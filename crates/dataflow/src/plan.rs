//! The lazy physical plan: a DAG of [`PlanOp`] nodes built by [`Dataset`]
//! operators, plus the plan-walking machinery ([`collapse`], [`drive`],
//! [`flatten_union`]) that the [`Executor`](crate::Executor)
//! implementations share.
//!
//! Narrow operators (`map`, `filter`, `flat_map`, `union`,
//! `map_partitions`) never run when called — they append a node to the
//! plan. At a *materialization point* (a shuffle, `collect`, `reduce`,
//! `broadcast`, `zip_partitions`) the executor collapses every pending
//! chain of row-level nodes into one [`Step`] list and runs it as a single
//! physical stage per partition, feeding each transformed row into a sink
//! without materializing any per-operator intermediate `Vec<Value>`.
//!
//! Since the post-shuffle stages of `reduce_by_key`, `group_by_key`,
//! `merge`, and `cogroup` became lazy [`PlanOp::MapPartitions`] nodes, the
//! shuffle-*read* side fuses with the next narrow chain too:
//! `reduce_by_key → map → shuffle` is two physical stages (combine +
//! scatter, then reduce + map + scatter), not three.
//!
//! Every row-level node carries an optional **statement tag** — the source
//! statement that built it, set by driver layers through
//! [`Context::set_statement_label`](crate::Context::set_statement_label).
//! Tags surface in two places: fused stages that span several source
//! statements list all their tags in the plan trace, and an error raised
//! inside a tagged step is prefixed with its statement, so laziness never
//! loses error locality.
//!
//! The executor is directional in the Cranelift optimization-rules sense:
//! a fused plan performs *at most* the work of the eager pipeline it
//! replaces — one pass, no intermediate allocations, one clone per
//! surviving row — never more.
//!
//! [`Dataset`]: crate::Dataset

use std::sync::Arc;

use diablo_runtime::{RuntimeError, Value};

use crate::columnar::RowExpr;
use crate::pool::{run_stage_weighted, Cancel};
use crate::stats::Stats;
use crate::Context;

/// How many rows a stage sink emits between cooperative-cancellation
/// polls. Cheap enough to leave on everywhere; fine-grained enough that a
/// long morsel notices a lower-indexed failure quickly.
const CANCEL_POLL_ROWS: usize = 1024;

/// Wraps a stage's output sink with a cooperative-cancellation poll: once
/// a lower-indexed item has failed, this item's output can never surface,
/// so the sink bails with a placeholder error (always discarded by the
/// pool — the lower item's error is the one returned).
fn cancellable_sink<'a>(
    cancel: &'a Cancel<'_>,
    mut push: impl FnMut(Value) + 'a,
) -> impl FnMut(Value) -> Result<()> + 'a {
    let mut emitted = 0usize;
    move |v: Value| {
        push(v);
        emitted += 1;
        if emitted.is_multiple_of(CANCEL_POLL_ROWS) && cancel.cancelled() {
            return Err(RuntimeError::new("stage cancelled after earlier error"));
        }
        Ok(())
    }
}

/// Result alias matching the engine's.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// A row-to-row transformation stored in the plan.
pub(crate) type RowMapFn = Arc<dyn Fn(&Value) -> Result<Value> + Send + Sync>;
/// A row predicate stored in the plan.
pub(crate) type RowPredFn = Arc<dyn Fn(&Value) -> Result<bool> + Send + Sync>;
/// A row-to-rows transformation stored in the plan.
pub(crate) type RowFlatFn = Arc<dyn Fn(&Value) -> Result<Vec<Value>> + Send + Sync>;
/// A partition-at-a-time transformation stored in the plan.
pub(crate) type PartFn = Arc<dyn Fn(&[Value]) -> Result<Vec<Value>> + Send + Sync>;

/// The source-statement tag of a plan node (`None` outside a driver
/// session).
pub(crate) type Tag = Option<Arc<str>>;

/// One node of the lazy physical plan.
pub(crate) enum PlanOp {
    /// Materialized partitions — the leaves of every plan.
    Scan(Arc<Vec<Vec<Value>>>),
    /// A forced dataset standing in for its lineage: resolved through the
    /// shared dataset cache at execution time. A hit reads the cached
    /// partitions (memory or disk tier) like a `Scan`; a miss — the entry
    /// was evicted under budget pressure — transparently re-derives the
    /// inner plan and reinserts it. Holding the [`CacheSlot`] (not a bare
    /// id) keeps the entry's identity alive for exactly as long as some
    /// plan can still read it.
    Cached(Arc<crate::dscache::CacheSlot>, Arc<PlanOp>),
    /// Row-wise `map`. The optional [`RowExpr`] is the transparent column
    /// expression the closure was derived from, when the transformation
    /// is engine-visible (`map_expr`, lowered loop steps); `None` marks
    /// an opaque UDF.
    Map(Arc<PlanOp>, RowMapFn, Tag, Option<Arc<RowExpr>>),
    /// Row-wise `filter`, with its transparent predicate expression when
    /// engine-visible.
    Filter(Arc<PlanOp>, RowPredFn, Tag, Option<Arc<RowExpr>>),
    /// Row-wise `flat_map`.
    FlatMap(Arc<PlanOp>, RowFlatFn, Tag),
    /// Partition-wise transformation (a fusion barrier for row steps
    /// below it, but itself fused with the steps above it). The `&'static
    /// str` names the operator for plan traces (`map_partitions`,
    /// `reduce_by_key (reduce)`, `merge ⊳ (combine)`, …).
    MapPartitions(Arc<PlanOp>, PartFn, &'static str, Tag),
    /// Bag union; keeps the left side's partition count.
    Union(Arc<PlanOp>, Arc<PlanOp>),
}

/// The operator of one fused narrow step.
#[derive(Clone)]
pub(crate) enum StepOp {
    /// From [`PlanOp::Map`].
    Map(RowMapFn),
    /// From [`PlanOp::Filter`].
    Filter(RowPredFn),
    /// From [`PlanOp::FlatMap`].
    FlatMap(RowFlatFn),
}

/// One fused narrow step (a row-level op of a collapsed chain) plus the
/// source statement that built it.
#[derive(Clone)]
pub(crate) struct Step {
    pub op: StepOp,
    pub tag: Tag,
    /// The transparent column expression, when the step is
    /// columnar-eligible; `None` marks an opaque UDF the columnar
    /// backend demotes to the row path.
    pub expr: Option<Arc<RowExpr>>,
}

impl Step {
    fn label(&self) -> &'static str {
        match self.op {
            StepOp::Map(_) => "map",
            StepOp::Filter(_) => "filter",
            StepOp::FlatMap(_) => "flat_map",
        }
    }

    /// Prefixes an error from this step with its source statement.
    pub(crate) fn tag_err(&self, e: RuntimeError) -> RuntimeError {
        tag_opt(e, &self.tag)
    }
}

/// Prefixes an error with a source-statement tag, if one is present.
fn tag_opt(e: RuntimeError, tag: &Tag) -> RuntimeError {
    match tag {
        Some(t) => e.with_context(t),
        None => e,
    }
}

/// Drives one source row through a fused step chain, feeding every
/// surviving output row to `sink`. No intermediate collections: `map`
/// passes its output by value, `filter` short-circuits, and `flat_map`
/// iterates its expansion in place.
pub(crate) fn drive(
    row: &Value,
    steps: &[Step],
    sink: &mut dyn FnMut(Value) -> Result<()>,
) -> Result<()> {
    match steps.split_first() {
        None => sink(row.clone()),
        Some((
            s @ Step {
                op: StepOp::Map(f), ..
            },
            rest,
        )) => drive_owned(f(row).map_err(|e| s.tag_err(e))?, rest, sink),
        Some((
            s @ Step {
                op: StepOp::Filter(f),
                ..
            },
            rest,
        )) => {
            if f(row).map_err(|e| s.tag_err(e))? {
                drive(row, rest, sink)?;
            }
            Ok(())
        }
        Some((
            s @ Step {
                op: StepOp::FlatMap(f),
                ..
            },
            rest,
        )) => {
            for v in f(row).map_err(|e| s.tag_err(e))? {
                drive_owned(v, rest, sink)?;
            }
            Ok(())
        }
    }
}

pub(crate) fn drive_owned(
    row: Value,
    steps: &[Step],
    sink: &mut dyn FnMut(Value) -> Result<()>,
) -> Result<()> {
    match steps.split_first() {
        None => sink(row),
        Some((
            s @ Step {
                op: StepOp::Map(f), ..
            },
            rest,
        )) => drive_owned(f(&row).map_err(|e| s.tag_err(e))?, rest, sink),
        Some((
            s @ Step {
                op: StepOp::Filter(f),
                ..
            },
            rest,
        )) => {
            if f(&row).map_err(|e| s.tag_err(e))? {
                drive_owned(row, rest, sink)?;
            }
            Ok(())
        }
        Some((
            s @ Step {
                op: StepOp::FlatMap(f),
                ..
            },
            rest,
        )) => {
            for v in f(&row).map_err(|e| s.tag_err(e))? {
                drive_owned(v, rest, sink)?;
            }
            Ok(())
        }
    }
}

/// Drives a run of source rows through the chain **batch-at-a-time**: each
/// tile of up to `batch` rows is pushed through one step at a time with a
/// tight per-step inner loop, instead of recursing per row. Output rows,
/// their order, and (for deterministic operators) the first error are
/// identical to [`drive`]: when a batched step fails, the tile is replayed
/// tuple-at-a-time so the error surfaces in canonical row order.
pub(crate) fn drive_batch(
    rows: &[Value],
    steps: &[Step],
    batch: usize,
    sink: &mut dyn FnMut(Value) -> Result<()>,
) -> Result<()> {
    debug_assert!(batch > 0);
    if steps.is_empty() {
        for row in rows {
            sink(row.clone())?;
        }
        return Ok(());
    }
    let (first, rest) = steps.split_first().expect("checked non-empty");
    for tile in rows.chunks(batch) {
        match seed_tile(tile, first).and_then(|buf| apply_steps_to_tile(buf, rest)) {
            Ok(out) => {
                for v in out {
                    sink(v)?;
                }
            }
            Err(batched) => {
                // Replay this tile tuple-at-a-time into the REAL sink:
                // nothing from a failed tile has been sunk yet, and the
                // canonical first error may come from the consumer (the
                // sink — e.g. a scatter's key check on an earlier row),
                // not from the step that failed batched. Replaying for
                // real reproduces exactly what tuple-at-a-time execution
                // would have delivered and raised.
                for row in tile {
                    drive(row, steps, sink)?;
                }
                // Non-deterministic operator: the replay sailed through,
                // so keep the batched error.
                return Err(batched);
            }
        }
    }
    Ok(())
}

/// Builds the tile buffer by applying the FIRST step straight from the
/// borrowed source rows — `map` allocates only its outputs, `filter`
/// clones only survivors — so the batch path pays no upfront whole-tile
/// clone (rows carrying dense tile payloads are exactly where that would
/// hurt).
fn seed_tile(tile: &[Value], first: &Step) -> Result<Vec<Value>> {
    let mut buf = Vec::with_capacity(tile.len());
    match &first.op {
        StepOp::Map(f) => {
            for v in tile {
                buf.push(f(v).map_err(|e| first.tag_err(e))?);
            }
        }
        StepOp::Filter(f) => {
            for v in tile {
                if f(v).map_err(|e| first.tag_err(e))? {
                    buf.push(v.clone());
                }
            }
        }
        StepOp::FlatMap(f) => {
            for v in tile {
                buf.extend(f(v).map_err(|e| first.tag_err(e))?);
            }
        }
    }
    Ok(buf)
}

/// Applies every step to a whole tile with per-step inner loops.
fn apply_steps_to_tile(mut buf: Vec<Value>, steps: &[Step]) -> Result<Vec<Value>> {
    for s in steps {
        match &s.op {
            StepOp::Map(f) => {
                for v in buf.iter_mut() {
                    *v = f(v).map_err(|e| s.tag_err(e))?;
                }
            }
            StepOp::Filter(f) => {
                let mut kept = Vec::with_capacity(buf.len());
                for v in buf {
                    if f(&v).map_err(|e| s.tag_err(e))? {
                        kept.push(v);
                    }
                }
                buf = kept;
            }
            StepOp::FlatMap(f) => {
                let mut expanded = Vec::with_capacity(buf.len());
                for v in &buf {
                    expanded.extend(f(v).map_err(|e| s.tag_err(e))?);
                }
                buf = expanded;
            }
        }
        if buf.is_empty() {
            break;
        }
    }
    Ok(buf)
}

/// A plan collapsed to a base node plus the fused row steps above it.
pub(crate) struct Collapsed {
    /// The deepest non-row node: `Scan`, `Cached`, `MapPartitions`, or
    /// `Union`.
    pub base: Arc<PlanOp>,
    /// Row steps to apply to the base's rows, in execution order.
    pub steps: Vec<Step>,
}

/// Walks `Map`/`Filter`/`FlatMap` nodes down to the nearest barrier.
pub(crate) fn collapse(plan: &Arc<PlanOp>) -> Collapsed {
    let mut steps: Vec<Step> = Vec::new();
    let mut cur = plan.clone();
    loop {
        let next = match cur.as_ref() {
            PlanOp::Map(input, f, tag, expr) => {
                steps.push(Step {
                    op: StepOp::Map(f.clone()),
                    tag: tag.clone(),
                    expr: expr.clone(),
                });
                input.clone()
            }
            PlanOp::Filter(input, f, tag, expr) => {
                steps.push(Step {
                    op: StepOp::Filter(f.clone()),
                    tag: tag.clone(),
                    expr: expr.clone(),
                });
                input.clone()
            }
            PlanOp::FlatMap(input, f, tag) => {
                steps.push(Step {
                    op: StepOp::FlatMap(f.clone()),
                    tag: tag.clone(),
                    expr: None,
                });
                input.clone()
            }
            PlanOp::Scan(_)
            | PlanOp::Cached(_, _)
            | PlanOp::MapPartitions(_, _, _, _)
            | PlanOp::Union(_, _) => break,
        };
        cur = next;
    }
    steps.reverse();
    Collapsed { base: cur, steps }
}

/// Executor output: shared when no work was needed, owned otherwise.
pub enum Parts {
    /// Untouched materialized partitions (zero-copy).
    Shared(Arc<Vec<Vec<Value>>>),
    /// Freshly computed partitions.
    Owned(Vec<Vec<Value>>),
}

impl Parts {
    /// The partitions as a slice.
    pub fn as_slice(&self) -> &[Vec<Value>] {
        match self {
            Parts::Shared(p) => p,
            Parts::Owned(p) => p,
        }
    }

    /// Converts into a shared handle without copying owned data.
    pub fn into_arc(self) -> Arc<Vec<Vec<Value>>> {
        match self {
            Parts::Shared(p) => p,
            Parts::Owned(p) => Arc::new(p),
        }
    }

    /// Converts into owned partitions, cloning only if still shared
    /// elsewhere.
    pub fn into_owned(self) -> Vec<Vec<Value>> {
        match self {
            Parts::Shared(p) => Arc::try_unwrap(p).unwrap_or_else(|p| p.as_ref().clone()),
            Parts::Owned(p) => p,
        }
    }
}

/// How a stage's work maps onto pool tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ChunkPolicy {
    /// One task per partition — the classic schedule.
    Fixed,
    /// Re-chunk at the stage boundary from observed per-partition row
    /// counts, Spark-AQE style: split skewed partitions across several
    /// tasks (narrow stages only — a partition-level function must see
    /// its whole partition) and coalesce runs of tiny ones into a single
    /// task. Scheduling only: partition boundaries, within-partition row
    /// order, stage counts, and first errors are exactly those of
    /// [`ChunkPolicy::Fixed`].
    Adaptive,
    /// Split every partition larger than [`Context::morsel_size`] rows
    /// into fixed-size morsel spans (narrow stages only), regardless of
    /// skew — the work-stealing pool's preferred granularity. Consumers
    /// (partition-atomic) coalesce tiny partitions like
    /// [`ChunkPolicy::Adaptive`]. Scheduling only: results and first
    /// errors are exactly those of [`ChunkPolicy::Fixed`].
    Morsel,
}

/// One scheduling item: contiguous row spans `(partition, start, end)`,
/// ordered by `(partition, start)`.
type Spans = Vec<(usize, usize, usize)>;

/// Plans adaptive work items over observed per-partition row counts.
/// Returns `None` when the plan degenerates to one-task-per-partition
/// (callers then keep the classic schedule and its zero overhead).
fn chunk_plan(sizes: &[usize], workers: usize, splittable: bool) -> Option<Vec<Spans>> {
    let total: usize = sizes.iter().sum();
    // A single partition is the maximally skewed case — still worth
    // splitting (when allowed); only an empty stage has nothing to plan.
    if total == 0 {
        return None;
    }
    // Aim for a few tasks per worker so self-scheduling can rebalance —
    // but never chase chunks smaller than a floor: on tiny stages the
    // per-task overhead (pool claim, result slot, output reassembly)
    // would dwarf any balancing win, so small partitions coalesce and
    // nothing splits. The floor shrinks with the worker count: a flat
    // 4096 kept stages of a few thousand rows on one core no matter how
    // wide the pool was (the flat small-input PageRank rows in the
    // scaling bench), while 4096/workers still keeps per-task overhead
    // amortized over at least 64 rows.
    const MIN_TARGET_ROWS: usize = 4096;
    let floor = (MIN_TARGET_ROWS / workers.max(1)).max(64);
    let target = (total / (workers * 4).max(1)).max(floor);
    let mut items: Vec<Spans> = Vec::new();
    let mut group: Spans = Vec::new();
    let mut group_rows = 0usize;
    let mut changed = false;
    let flush = |group: &mut Spans, items: &mut Vec<Spans>, changed: &mut bool| {
        if !group.is_empty() {
            *changed |= group.len() > 1;
            items.push(std::mem::take(group));
        }
    };
    for (p, &n) in sizes.iter().enumerate() {
        if splittable && n > 2 * target {
            // Skewed: split into ~target-row spans, each its own task.
            flush(&mut group, &mut items, &mut changed);
            group_rows = 0;
            let pieces = n.div_ceil(target);
            let chunk = n.div_ceil(pieces);
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                items.push(vec![(p, start, end)]);
                start = end;
            }
            changed = true;
        } else if n >= target {
            // Big enough to be its own task: never lump it into a
            // coalesce group (that would serialize it behind the tinies).
            flush(&mut group, &mut items, &mut changed);
            group_rows = 0;
            items.push(vec![(p, 0, n)]);
        } else {
            group.push((p, 0, n));
            group_rows += n;
            if group_rows >= target {
                flush(&mut group, &mut items, &mut changed);
                group_rows = 0;
            }
        }
    }
    flush(&mut group, &mut items, &mut changed);
    changed.then_some(items)
}

/// Plans morsel work items: every partition larger than `morsel` rows
/// splits into even spans of at most `morsel` rows; smaller partitions
/// stay whole (no coalescing — the work-stealing pool absorbs many small
/// items cheaply). Returns `None` when nothing splits (or splitting is
/// forbidden), so callers keep the classic zero-overhead schedule.
fn morsel_plan(sizes: &[usize], morsel: usize, splittable: bool) -> Option<Vec<Spans>> {
    debug_assert!(morsel > 0);
    if !splittable || !sizes.iter().any(|&n| n > morsel) {
        return None;
    }
    let mut items: Vec<Spans> = Vec::new();
    for (p, &n) in sizes.iter().enumerate() {
        if n > morsel {
            // Even spans: div_ceil pieces, so no runt morsel at the end.
            let pieces = n.div_ceil(morsel);
            let chunk = n.div_ceil(pieces);
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                items.push(vec![(p, start, end)]);
                start = end;
            }
        } else {
            items.push(vec![(p, 0, n)]);
        }
    }
    Some(items)
}

/// Total rows one spans-item covers — its scheduling weight.
fn item_rows(spans: &Spans) -> u64 {
    spans.iter().map(|&(_, s, e)| (e - s) as u64).sum()
}

/// Plans the stage's scheduling items for a *splittable* (narrow) or
/// partition-atomic stage under `policy`, emitting the matching explain
/// note. `None` keeps the classic one-task-per-partition schedule.
fn stage_items(
    ctx: &Context,
    sizes: &[usize],
    splittable: bool,
    policy: ChunkPolicy,
) -> Option<Vec<Spans>> {
    match policy {
        ChunkPolicy::Fixed => None,
        ChunkPolicy::Adaptive => {
            let items = chunk_plan(sizes, ctx.workers(), splittable)?;
            ctx.plan_note(format!(
                "adaptive: re-chunked {} partitions into {} tasks",
                sizes.len(),
                items.len()
            ));
            Some(items)
        }
        ChunkPolicy::Morsel => {
            let items = morsel_plan(sizes, ctx.morsel_size(), splittable)
                .or_else(|| chunk_plan(sizes, ctx.workers(), false))?;
            ctx.plan_note(format!(
                "morsel: scheduled {} partitions as {} item(s) (≤{} rows each)",
                sizes.len(),
                items.len(),
                ctx.morsel_size()
            ));
            Some(items)
        }
    }
}

/// How an executor pushes rows through a fused step chain.
#[derive(Clone, Debug)]
pub(crate) enum DriveMode {
    /// Tuple-at-a-time recursion ([`drive`]).
    Tuple,
    /// Tile-at-a-time inner loops of the given width ([`drive_batch`]).
    Batch(usize),
    /// Columnar tiles of the given width: eligible chains (every step
    /// carries a [`RowExpr`]) run through typed per-column loops
    /// ([`crate::columnar::drive_columnar`], counting batches on the
    /// carried [`Stats`]); chains with an opaque step fall back to
    /// tuple-at-a-time, per stage.
    Columnar(usize, Arc<Stats>),
}

impl DriveMode {
    fn run(
        &self,
        rows: &[Value],
        steps: &[Step],
        sink: &mut dyn FnMut(Value) -> Result<()>,
    ) -> Result<()> {
        match self {
            DriveMode::Tuple => {
                for row in rows {
                    drive(row, steps, sink)?;
                }
                Ok(())
            }
            DriveMode::Batch(b) => drive_batch(rows, steps, *b, sink),
            DriveMode::Columnar(b, stats) => {
                if crate::columnar::eligible(steps) {
                    crate::columnar::drive_columnar(rows, steps, *b, stats, sink)
                } else {
                    for row in rows {
                        drive(row, steps, sink)?;
                    }
                    Ok(())
                }
            }
        }
    }
}

/// Notes a fused stage's execution layout in the plan trace when the
/// engine runs columnar, and counts stages demoted to the row path. Only
/// chains with row steps are classified — a bare scan or consumer stage
/// has nothing to vectorize.
fn note_layout(ctx: &Context, mode: &DriveMode, steps: &[Step]) {
    let DriveMode::Columnar(_, stats) = mode else {
        return;
    };
    if steps.is_empty() {
        return;
    }
    match steps.iter().find(|s| s.expr.is_none()) {
        None => ctx.plan_note("  layout: columnar".to_string()),
        Some(opaque) => {
            stats.record_row_fallback_stage();
            let why = match &opaque.tag {
                Some(t) => format!("opaque {} from {t}", opaque.label()),
                None => format!("opaque {}", opaque.label()),
            };
            ctx.plan_note(format!("  layout: row ({why})"));
        }
    }
}

/// Resolves a `Cached` barrier to materialized partitions: a cache hit
/// reads the entry (memory or disk tier); a miss re-derives the inner
/// plan — the lineage replay — and reinserts it under the same slot, so
/// one recompute serves every later reader until the next eviction.
fn resolve_cached(
    ctx: &Context,
    slot: &Arc<crate::dscache::CacheSlot>,
    inner: &Arc<PlanOp>,
    mode: &DriveMode,
    policy: ChunkPolicy,
) -> Result<Arc<Vec<Vec<Value>>>> {
    let cache = slot.cache();
    if let Some(parts) = cache.get(slot.id(), ctx)? {
        return Ok(parts);
    }
    let parts = materialize_with(ctx, inner, &[], mode, policy)?.into_arc();
    cache.insert(slot.id(), parts.clone(), ctx)?;
    Ok(parts)
}

/// Materializes a plan into partitions, fusing every narrow chain into one
/// physical stage per `Scan`/`Cached`/`MapPartitions`/`Union` segment.
pub(crate) fn materialize(
    ctx: &Context,
    plan: &Arc<PlanOp>,
    mode: &DriveMode,
    policy: ChunkPolicy,
) -> Result<Parts> {
    crate::verify::verify_plan(plan)?;
    materialize_with(ctx, plan, &[], mode, policy)
}

/// [`materialize`] with extra steps appended after the plan's own rows —
/// how steps above a `Union` are pushed down into both branches.
fn materialize_with(
    ctx: &Context,
    plan: &Arc<PlanOp>,
    extra: &[Step],
    mode: &DriveMode,
    policy: ChunkPolicy,
) -> Result<Parts> {
    let Collapsed { base, steps } = collapse(plan);
    let mut all = steps;
    all.extend(extra.iter().cloned());
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            if all.is_empty() {
                return Ok(Parts::Shared(parts.clone()));
            }
            let out = run_fused_stage(
                ctx,
                parts,
                None,
                &all,
                parts.len(),
                "materialize",
                mode,
                policy,
            )?;
            Ok(Parts::Owned(out))
        }
        PlanOp::Cached(slot, inner) => {
            let parts = resolve_cached(ctx, slot, inner, mode, policy)?;
            if all.is_empty() {
                return Ok(Parts::Shared(parts));
            }
            let out = run_fused_stage(
                ctx,
                &parts,
                None,
                &all,
                parts.len(),
                "materialize",
                mode,
                policy,
            )?;
            Ok(Parts::Owned(out))
        }
        PlanOp::MapPartitions(input, f, label, tag) => {
            let inp = materialize(ctx, input, mode, policy)?;
            let out = run_fused_stage(
                ctx,
                inp.as_slice(),
                Some((f.clone(), label, tag.clone())),
                &all,
                inp.as_slice().len(),
                "materialize",
                mode,
                policy,
            )?;
            Ok(Parts::Owned(out))
        }
        PlanOp::Union(_, _) => {
            // Read every operand in place through segments and build the
            // owned output partitions in one fused stage: each surviving
            // row is cloned exactly once, into its destination partition —
            // no side is materialized into intermediate combined
            // partitions first.
            let mut sources: Vec<(Parts, Vec<Step>)> = Vec::new();
            let mut virt: Vec<Vec<(usize, usize)>> = Vec::new();
            flatten_union(ctx, &base, &all, &mut sources, &mut virt, mode, policy)?;
            ctx.record_physical_stage();
            let stage = ctx.stats().snapshot().physical_stages;
            ctx.plan_note(format!(
                "stage {stage}: union[{} sources, {} partitions] ⇒ materialize (read in place)",
                sources.len(),
                virt.len()
            ));
            let out = run_stage_weighted(
                ctx,
                &virt,
                |i| {
                    virt[i]
                        .iter()
                        .map(|&(src, p)| sources[src].0.as_slice()[p].len() as u64)
                        .sum()
                },
                |_, segs: &Vec<(usize, usize)>, cancel| {
                    let mut part = Vec::new();
                    let mut sink = cancellable_sink(cancel, |v| part.push(v));
                    for &(src, p) in segs {
                        mode.run(&sources[src].0.as_slice()[p], &sources[src].1, &mut sink)?;
                    }
                    drop(sink);
                    Ok(part)
                },
            )?;
            Ok(Parts::Owned(out))
        }
        // collapse() never returns a row node as base.
        _ => Err(RuntimeError::new("corrupt plan: row node as base")),
    }
}

/// Runs one fused physical stage: per partition, optionally apply a
/// partition-level function, then drive every row through `steps`.
///
/// Under [`ChunkPolicy::Adaptive`] the stage's work is re-chunked from the
/// observed partition sizes — skewed partitions split across tasks (only
/// when there is no partition-level prelude, which must see its whole
/// partition), tiny ones coalesced — and the outputs reassembled on the
/// original partition boundaries, so results are byte-identical to the
/// fixed schedule.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_fused_stage(
    ctx: &Context,
    input: &[Vec<Value>],
    prelude: Option<(PartFn, &'static str, Tag)>,
    steps: &[Step],
    parts: usize,
    label: &str,
    mode: &DriveMode,
    policy: ChunkPolicy,
) -> Result<Vec<Vec<Value>>> {
    ctx.record_physical_stage();
    ctx.plan_note(describe_stage(
        ctx,
        parts,
        prelude.as_ref().map(|(_, l, t)| (*l, t.clone())),
        steps,
        label,
    ));
    note_layout(ctx, mode, steps);
    let prelude = prelude.map(|(f, _, tag)| (f, tag));
    let sizes: Vec<usize> = input.iter().map(Vec::len).collect();
    if let Some(items) = stage_items(ctx, &sizes, prelude.is_none(), policy) {
        let outs = run_stage_weighted(
            ctx,
            &items,
            |i| item_rows(&items[i]),
            |_, spans: &Spans, cancel| {
                let mut produced: Vec<(usize, Vec<Value>)> = Vec::with_capacity(spans.len());
                for &(p, start, end) in spans {
                    let mut out = Vec::new();
                    let mut sink = cancellable_sink(cancel, |v| out.push(v));
                    match &prelude {
                        Some((f, tag)) => {
                            let rows = f(&input[p]).map_err(|e| tag_opt(e, tag))?;
                            mode.run(&rows, steps, &mut sink)?;
                        }
                        None => mode.run(&input[p][start..end], steps, &mut sink)?,
                    }
                    drop(sink);
                    produced.push((p, out));
                }
                Ok(produced)
            },
        )?;
        // Items are ordered by (partition, start), so extending in
        // item order rebuilds each partition in source order.
        let mut dest: Vec<Vec<Value>> = input.iter().map(|_| Vec::new()).collect();
        for item in outs {
            for (p, rows) in item {
                dest[p].extend(rows);
            }
        }
        return Ok(dest);
    }
    run_stage_weighted(
        ctx,
        input,
        |i| sizes[i] as u64,
        |_, part: &Vec<Value>, cancel| {
            let mut out = Vec::with_capacity(part.len());
            let mut sink = cancellable_sink(cancel, |v| out.push(v));
            match &prelude {
                Some((f, tag)) => {
                    let rows = f(part).map_err(|e| tag_opt(e, tag))?;
                    mode.run(&rows, steps, &mut sink)?;
                }
                None => mode.run(part, steps, &mut sink)?,
            }
            drop(sink);
            Ok(out)
        },
    )
}

/// Runs a consumer once per partition, on the classic
/// one-task-per-partition schedule (`items` = `None`) or with runs of
/// tiny partitions coalesced into shared tasks. Either way the results
/// come back in partition order and the first error follows partition
/// order (items are partition-ordered; within an item, sequential).
fn run_consumer_stage<R: Send>(
    ctx: &Context,
    sizes: &[usize],
    items: Option<Vec<Spans>>,
    run_one: impl Fn(usize) -> Result<R> + Sync,
) -> Result<Vec<R>> {
    match items {
        Some(items) => {
            let outs = run_stage_weighted(
                ctx,
                &items,
                |i| item_rows(&items[i]),
                |_, spans: &Spans, _| {
                    spans
                        .iter()
                        .map(|&(p, _, _)| run_one(p))
                        .collect::<Result<Vec<R>>>()
                },
            )?;
            Ok(outs.into_iter().flatten().collect())
        }
        None => {
            let idx: Vec<usize> = (0..sizes.len()).collect();
            run_stage_weighted(ctx, &idx, |i| sizes[i] as u64, |_, &p, _| run_one(p))
        }
    }
}

/// Runs `task` once per partition over the plan's *transformed* rows, in
/// one fused physical stage whenever the base permits: a `Scan`, a tree of
/// `Union`s over scans, or a `MapPartitions` whose own input is a scan
/// (the shuffle-read fusion — the post-shuffle reduce runs inside the
/// consumer's stage). `task` receives the partition index and a
/// [`PartitionRows`] cursor; this is how shuffles and reductions consume a
/// pending chain without an intermediate materialization — for unions,
/// without copying either operand.
pub(crate) fn consume<R, F>(
    ctx: &Context,
    plan: &Arc<PlanOp>,
    label: &str,
    mode: &DriveMode,
    policy: ChunkPolicy,
    task: F,
) -> Result<Vec<R>>
where
    R: Send,
    F: Fn(usize, &PartitionRows<'_>) -> Result<R> + Sync,
{
    crate::verify::verify_plan(plan)?;
    // Consumer tasks are atomic per partition (a scatter may carry
    // partition-wide state, e.g. a combiner's hash map), so adaptive
    // scheduling can only coalesce runs of tiny partitions into one task,
    // never split — results and first errors are unchanged.
    let coalesce = |_parts_len: usize, sizes: &[usize]| -> Option<Vec<Spans>> {
        stage_items(ctx, sizes, false, policy)
    };
    let Collapsed { base, steps } = collapse(plan);
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            ctx.record_physical_stage();
            ctx.plan_note(describe_stage(ctx, parts.len(), None, &steps, label));
            note_layout(ctx, mode, &steps);
            let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
            let items = coalesce(parts.len(), &sizes);
            run_consumer_stage(ctx, &sizes, items, |p| {
                task(
                    p,
                    &PartitionRows {
                        segments: vec![Segment {
                            rows: &parts[p],
                            steps: &steps,
                        }],
                        mode: mode.clone(),
                    },
                )
            })
        }
        PlanOp::Cached(slot, inner) => {
            let parts = resolve_cached(ctx, slot, inner, mode, policy)?;
            ctx.record_physical_stage();
            ctx.plan_note(describe_stage(ctx, parts.len(), None, &steps, label));
            note_layout(ctx, mode, &steps);
            let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
            let items = coalesce(parts.len(), &sizes);
            run_consumer_stage(ctx, &sizes, items, |p| {
                task(
                    p,
                    &PartitionRows {
                        segments: vec![Segment {
                            rows: &parts[p],
                            steps: &steps,
                        }],
                        mode: mode.clone(),
                    },
                )
            })
        }
        PlanOp::MapPartitions(input, f, plabel, tag) => {
            // Shuffle-read fusion: when the prelude's input is already
            // materialized (a scan — e.g. gathered shuffle buckets — or a
            // cached barrier, resolved through the dataset cache), the
            // partition-level function, the fused chain above it, and the
            // consumer all run in ONE stage.
            let inner = collapse(input);
            let scanned: Option<Arc<Vec<Vec<Value>>>> = match inner.base.as_ref() {
                PlanOp::Scan(parts) => Some(parts.clone()),
                PlanOp::Cached(slot, ip) => Some(resolve_cached(ctx, slot, ip, mode, policy)?),
                _ => None,
            };
            if let Some(parts) = scanned {
                let parts = parts.as_ref();
                ctx.record_physical_stage();
                ctx.plan_note(describe_stage(
                    ctx,
                    parts.len(),
                    Some((*plabel, tag.clone())),
                    &steps,
                    label,
                ));
                // Both fused chains of this stage get a layout verdict:
                // the one feeding the prelude and the one above it.
                note_layout(ctx, mode, &inner.steps);
                note_layout(ctx, mode, &steps);
                let lower = &inner.steps;
                // Steps below the prelude feed it a materialized Vec.
                let feed = |part: &[Value]| -> Result<Vec<Value>> {
                    if lower.is_empty() {
                        f(part).map_err(|e| tag_opt(e, tag))
                    } else {
                        let mut buf = Vec::with_capacity(part.len());
                        let mut sink = |v: Value| {
                            buf.push(v);
                            Ok(())
                        };
                        mode.run(part, lower, &mut sink)?;
                        f(&buf).map_err(|e| tag_opt(e, tag))
                    }
                };
                let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
                let items = coalesce(parts.len(), &sizes);
                return run_consumer_stage(ctx, &sizes, items, |p| {
                    let fed = feed(&parts[p])?;
                    task(
                        p,
                        &PartitionRows {
                            segments: vec![Segment {
                                rows: &fed,
                                steps: &steps,
                            }],
                            mode: mode.clone(),
                        },
                    )
                });
            }
            // Deep prelude (its input is itself unforced): materialize it
            // (fusing inside), then run the consumer as one more stage.
            let inp = materialize_with(ctx, &base, &steps, mode, policy)?;
            let parts = inp.as_slice();
            ctx.record_physical_stage();
            ctx.plan_note(describe_stage(ctx, parts.len(), None, &[], label));
            run_stage_weighted(
                ctx,
                parts,
                |i| parts[i].len() as u64,
                |i, part: &Vec<Value>, _| {
                    task(
                        i,
                        &PartitionRows {
                            segments: vec![Segment {
                                rows: part,
                                steps: &[],
                            }],
                            mode: mode.clone(),
                        },
                    )
                },
            )
        }
        PlanOp::Union(_, _) => {
            // Read all operands in place: each virtual partition is a
            // list of (source, partition) segments folded together with
            // the eager engine's `i % n` composition, each carrying its
            // own fused step chain. No operand is copied.
            let mut sources: Vec<(Parts, Vec<Step>)> = Vec::new();
            let mut virt: Vec<Vec<(usize, usize)>> = Vec::new();
            flatten_union(ctx, &base, &steps, &mut sources, &mut virt, mode, policy)?;
            ctx.record_physical_stage();
            let stage = ctx.stats().snapshot().physical_stages;
            ctx.plan_note(format!(
                "stage {stage}: union[{} sources, {} partitions] ⇒ {label} (read in place)",
                sources.len(),
                virt.len()
            ));
            run_stage_weighted(
                ctx,
                &virt,
                |i| {
                    virt[i]
                        .iter()
                        .map(|&(src, p)| sources[src].0.as_slice()[p].len() as u64)
                        .sum()
                },
                |i, segs: &Vec<(usize, usize)>, _| {
                    let segments = segs
                        .iter()
                        .map(|&(src, part)| Segment {
                            rows: &sources[src].0.as_slice()[part],
                            steps: &sources[src].1,
                        })
                        .collect();
                    task(
                        i,
                        &PartitionRows {
                            segments,
                            mode: mode.clone(),
                        },
                    )
                },
            )
        }
        // collapse() never returns a row node as base.
        _ => Err(RuntimeError::new("corrupt plan: row node as base")),
    }
}

/// Flattens a tree of `Union` nodes into shared sources plus virtual
/// partitions (lists of `(source, partition)` indices), pushing the fused
/// steps above each branch down into its segments. The right operand's
/// partitions fold into the left's by index modulo the left's partition
/// count — the same composition the eager engine produced by extending
/// partition vectors, but without moving a row.
#[allow(clippy::too_many_arguments)]
fn flatten_union(
    ctx: &Context,
    plan: &Arc<PlanOp>,
    extra: &[Step],
    sources: &mut Vec<(Parts, Vec<Step>)>,
    virt: &mut Vec<Vec<(usize, usize)>>,
    mode: &DriveMode,
    policy: ChunkPolicy,
) -> Result<()> {
    let Collapsed { base, steps } = collapse(plan);
    let mut all = steps;
    all.extend(extra.iter().cloned());
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            let src = sources.len();
            let n = parts.len();
            sources.push((Parts::Shared(parts.clone()), all));
            virt.extend((0..n).map(|p| vec![(src, p)]));
            Ok(())
        }
        PlanOp::Cached(slot, inner) => {
            // A cached operand reads in place like a scan once resolved.
            let parts = resolve_cached(ctx, slot, inner, mode, policy)?;
            let src = sources.len();
            let n = parts.len();
            sources.push((Parts::Shared(parts), all));
            virt.extend((0..n).map(|p| vec![(src, p)]));
            Ok(())
        }
        PlanOp::Union(l, r) => {
            let start = virt.len();
            flatten_union(ctx, l, &all, sources, virt, mode, policy)?;
            let n = virt.len() - start;
            let mut rvirt: Vec<Vec<(usize, usize)>> = Vec::new();
            flatten_union(ctx, r, &all, sources, &mut rvirt, mode, policy)?;
            if n == 0 {
                virt.extend(rvirt);
            } else {
                for (j, segs) in rvirt.into_iter().enumerate() {
                    virt[start + (j % n)].extend(segs);
                }
            }
            Ok(())
        }
        _ => {
            // MapPartitions under a union: materialize just this branch.
            let parts = materialize_with(ctx, &base, &all, mode, policy)?;
            let src = sources.len();
            let n = parts.as_slice().len();
            sources.push((parts, Vec::new()));
            virt.extend((0..n).map(|p| vec![(src, p)]));
            Ok(())
        }
    }
}

/// One run of source rows with the fused chain still to be applied.
struct Segment<'a> {
    rows: &'a [Value],
    steps: &'a [Step],
}

/// The rows of one (possibly union-composed) partition, as presented to an
/// executor's partition-wise consumer.
pub struct PartitionRows<'a> {
    segments: Vec<Segment<'a>>,
    mode: DriveMode,
}

impl PartitionRows<'_> {
    /// Feeds every transformed row to `sink`, segment by segment.
    pub fn for_each(&self, sink: &mut dyn FnMut(Value) -> Result<()>) -> Result<()> {
        for seg in &self.segments {
            self.mode.run(seg.rows, seg.steps, sink)?;
        }
        Ok(())
    }
}

fn describe_stage(
    ctx: &Context,
    parts: usize,
    prelude: Option<(&'static str, Tag)>,
    steps: &[Step],
    label: &str,
) -> String {
    let mut chain = String::new();
    let mut tags: Vec<Arc<str>> = Vec::new();
    let note_tag = |tags: &mut Vec<Arc<str>>, t: &Tag| {
        if let Some(t) = t {
            if !tags.iter().any(|x| x == t) {
                tags.push(t.clone());
            }
        }
    };
    if let Some((plabel, ptag)) = &prelude {
        chain.push_str(" → ");
        chain.push_str(plabel);
        note_tag(&mut tags, ptag);
    }
    for s in steps {
        chain.push_str(" → ");
        chain.push_str(s.label());
        note_tag(&mut tags, &s.tag);
    }
    let fused = steps.len() + usize::from(prelude.is_some());
    let stage = ctx.stats().snapshot().physical_stages;
    let mut out = if fused > 1 {
        format!("stage {stage}: scan[{parts}p]{chain} ⇒ {label} (fused {fused} narrow ops)")
    } else {
        format!("stage {stage}: scan[{parts}p]{chain} ⇒ {label}")
    };
    if tags.len() > 1 {
        out.push_str(&format!(
            " [spans stmts: {}]",
            tags.iter()
                .map(|t| t.as_ref())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out
}

/// Renders a pending (unforced) plan as an indented tree — the narrow
/// chains a materialization point would fuse.
pub(crate) fn render(plan: &Arc<PlanOp>, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let Collapsed { base, steps } = collapse(plan);
    match base.as_ref() {
        PlanOp::Scan(parts) => {
            out.push_str(&format!("{pad}scan[{}p]", parts.len()));
        }
        PlanOp::Cached(_, inner) => {
            out.push_str(&format!("{pad}cached("));
            let mut body = String::new();
            render(inner, 0, &mut body);
            out.push_str(&body);
            out.push(')');
        }
        PlanOp::MapPartitions(input, _, label, _) => {
            render(input, indent, out);
            out.push_str(" → ");
            out.push_str(label);
        }
        PlanOp::Union(l, r) => {
            out.push_str(&format!("{pad}union:\n"));
            render(l, indent + 1, out);
            out.push('\n');
            render(r, indent + 1, out);
        }
        // collapse() never returns a row node as base.
        PlanOp::Map(_, _, _, _) | PlanOp::Filter(_, _, _, _) | PlanOp::FlatMap(_, _, _) => {}
    }
    for s in &steps {
        out.push_str(" → ");
        out.push_str(s.label());
    }
    if steps.len() > 1 {
        out.push_str(&format!(" (1 fused stage, {} ops)", steps.len()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covered_rows(items: &[Spans], sizes: &[usize]) -> Vec<usize> {
        // Rows covered per partition, also checking span contiguity/order.
        let mut covered = vec![0usize; sizes.len()];
        let mut last: Option<(usize, usize)> = None;
        for item in items {
            for &(p, start, end) in item {
                if let Some((lp, lend)) = last {
                    assert!(
                        p > lp || (p == lp && start == lend),
                        "spans ordered by (partition, start) and contiguous"
                    );
                }
                covered[p] += end - start;
                last = Some((p, end));
            }
        }
        covered
    }

    #[test]
    fn balanced_partitions_keep_the_fixed_schedule() {
        assert!(chunk_plan(&[100_000, 100_000, 100_000, 100_000], 2, true).is_none());
        assert!(chunk_plan(&[], 4, true).is_none());
        assert!(chunk_plan(&[0, 0, 0], 4, true).is_none(), "nothing to do");
    }

    #[test]
    fn tiny_stages_coalesce_instead_of_splitting() {
        // Below the target floor nothing splits — per-task overhead would
        // dwarf the work — and the tiny partitions share one task.
        let sizes = [4, 4, 4, 4, 4];
        let items = chunk_plan(&sizes, 3, true).expect("coalesces");
        assert_eq!(items.len(), 1, "one task for a trivial stage");
        for &(_, start, _) in &items[0] {
            assert_eq!(start, 0, "no splits below the floor");
        }
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
    }

    #[test]
    fn skewed_partition_splits_into_ordered_spans() {
        let sizes = [10_000, 10, 10];
        let items = chunk_plan(&sizes, 2, true).expect("re-chunks");
        assert!(items.len() > 3, "the skewed partition fans out");
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
    }

    #[test]
    fn a_single_giant_partition_still_splits() {
        // The maximally skewed case: one partition, many workers.
        let sizes = [100_000];
        let items = chunk_plan(&sizes, 8, true).expect("re-chunks");
        assert!(items.len() >= 8, "all workers get a span: {}", items.len());
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
        // Unsplittable (consumer/prelude) single partitions stay fixed.
        assert!(chunk_plan(&sizes, 8, false).is_none());
    }

    #[test]
    fn small_stage_still_splits_across_a_wide_pool() {
        // 3000 rows is under the old flat 4096-row floor, which kept the
        // whole stage on one core; with the floor scaled by worker count
        // (4096/8 = 512) the stage fans out across the pool.
        let sizes = [3000];
        let items = chunk_plan(&sizes, 8, true).expect("re-chunks");
        assert!(items.len() >= 4, "small stage fans out: {}", items.len());
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
        // The floor never chases sub-64-row chunks: a truly tiny stage
        // still coalesces instead of splitting.
        let tiny = [40, 40];
        let items = chunk_plan(&tiny, 64, true).expect("coalesces");
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn morsel_plan_splits_only_oversized_partitions() {
        let sizes = [100, 10, 250];
        let items = morsel_plan(&sizes, 100, true).expect("partition 2 splits");
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
        // Partition 2 (250 rows, morsel 100) → 3 even spans of ≤ 100.
        let p2: Vec<_> = items
            .iter()
            .flatten()
            .filter(|&&(p, _, _)| p == 2)
            .collect();
        assert_eq!(p2.len(), 3);
        assert!(p2.iter().all(|&&(_, s, e)| e - s <= 100));
        // Partitions at or below the morsel size stay whole.
        assert!(items
            .iter()
            .flatten()
            .any(|&(p, s, e)| (p, s, e) == (0, 0, 100)));
    }

    #[test]
    fn morsel_plan_is_none_when_nothing_splits() {
        assert!(morsel_plan(&[10, 20, 30], 100, true).is_none());
        assert!(morsel_plan(&[], 100, true).is_none());
        assert!(
            morsel_plan(&[1000], 100, false).is_none(),
            "partition-atomic stages never split"
        );
    }

    #[test]
    fn morsel_size_one_isolates_every_row() {
        let sizes = [3, 1];
        let items = morsel_plan(&sizes, 1, true).expect("splits");
        assert_eq!(items.len(), 4);
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
    }

    #[test]
    fn tiny_partitions_coalesce_without_splitting_when_forbidden() {
        let sizes = [5, 5, 5, 5, 5, 5, 5, 5, 4000];
        let items = chunk_plan(&sizes, 2, false).expect("re-chunks");
        assert!(items.len() < sizes.len(), "tiny partitions coalesced");
        for item in &items {
            for &(p, start, end) in item {
                assert_eq!((start, end), (0, sizes[p]), "whole partitions only");
            }
        }
        assert_eq!(covered_rows(&items, &sizes), sizes.to_vec());
    }
}
