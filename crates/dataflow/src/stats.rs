//! Engine run statistics: logical operators, physical stages, shuffles,
//! broadcast sizes.
//!
//! The paper's evaluation reasons about *data shuffling* as the dominant
//! cost of DISC programs (§1: "all data exchanges across compute nodes are
//! done in a controlled way using DISC operations"). These counters let the
//! benchmark harness report how much each plan shuffles, which explains the
//! Figure 3 gaps (e.g. DIABLO's K-Means shuffles the whole point set while
//! the hand-written version shuffles only centroid-sized partials).
//!
//! Since the engine went lazy, the counters distinguish the two layers the
//! plan/fusion architecture separates:
//!
//! * **logical ops** ([`StatsSnapshot::stages`]) — how many `Dataset`
//!   operators a program *called*. This is the shape of the translated
//!   program, independent of execution strategy.
//! * **physical stages** ([`StatsSnapshot::physical_stages`]) — how many
//!   parallel per-partition passes the executor actually *ran* after
//!   fusing narrow chains. A chain of N narrow ops contributes N logical
//!   ops but exactly 1 physical stage.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters for one engine context.
#[derive(Debug, Default)]
pub struct Stats {
    logical_ops: AtomicU64,
    physical_stages: AtomicU64,
    shuffles: AtomicU64,
    sorted_shuffles: AtomicU64,
    shuffled_records: AtomicU64,
    shuffled_bytes: AtomicU64,
    spilled_records: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
    broadcasts: AtomicU64,
    broadcast_records: AtomicU64,
    morsels: AtomicU64,
    steals: AtomicU64,
    max_queue_depth: AtomicU64,
    sched_cost_us: AtomicU64,
    sched_critical_us: AtomicU64,
    dataset_spills: AtomicU64,
    dataset_spilled_bytes: AtomicU64,
    dataset_evictions: AtomicU64,
    dataset_recomputes: AtomicU64,
    vectorized_batches: AtomicU64,
    row_fallback_stages: AtomicU64,
}

impl Stats {
    pub(crate) fn record_logical_op(&self) {
        self.logical_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_physical_stage(&self) {
        self.physical_stages.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shuffle(&self, records: u64, bytes: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffled_records.fetch_add(records, Ordering::Relaxed);
        self.shuffled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_sorted_shuffle(&self) {
        self.sorted_shuffles.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_spill(&self, records: u64, bytes: u64, files: u64) {
        self.spilled_records.fetch_add(records, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_files.fetch_add(files, Ordering::Relaxed);
    }

    pub(crate) fn record_broadcast(&self, records: u64) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.broadcast_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Records one scheduled stage: how many morsels ran, how many were
    /// stolen, the deepest worker queue at submission, and the stage's
    /// wall time split into total cost vs the critical (busiest-worker)
    /// share — the pair behind [`StatsSnapshot::sched_speedup`].
    pub(crate) fn record_stage_schedule(
        &self,
        morsels: u64,
        steals: u64,
        depth: u64,
        cost_us: u64,
        critical_us: u64,
    ) {
        self.morsels.fetch_add(morsels, Ordering::Relaxed);
        self.steals.fetch_add(steals, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
        self.sched_cost_us.fetch_add(cost_us, Ordering::Relaxed);
        self.sched_critical_us
            .fetch_add(critical_us, Ordering::Relaxed);
    }

    /// Records one dataset-cache demotion to disk of `bytes` encoded
    /// bytes.
    pub(crate) fn record_dataset_spill(&self, bytes: u64) {
        self.dataset_spills.fetch_add(1, Ordering::Relaxed);
        self.dataset_spilled_bytes
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one dataset-cache entry dropped outright under pressure.
    pub(crate) fn record_dataset_eviction(&self) {
        self.dataset_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one evicted dataset re-derived from its plan lineage.
    pub(crate) fn record_dataset_recompute(&self) {
        self.dataset_recomputes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one column batch executed through the vectorized per-column
    /// loops (columnar backend only).
    pub(crate) fn record_vectorized_batch(&self) {
        self.vectorized_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fused stage the columnar backend had to run on the
    /// tuple-at-a-time row path because a step was opaque.
    pub(crate) fn record_row_fallback_stage(&self) {
        self.row_fallback_stages.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            backend: String::new(),
            workers: 0,
            partitions: 0,
            morsel_size: 0,
            memory_budget: 0,
            dataset_budget: 0,
            scheduler: String::new(),
            ordered: false,
            stages: self.logical_ops.load(Ordering::Relaxed),
            physical_stages: self.physical_stages.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            sorted_shuffles: self.sorted_shuffles.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            shuffled_bytes: self.shuffled_bytes.load(Ordering::Relaxed),
            spilled_records: self.spilled_records.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spill_files: self.spill_files.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            broadcast_records: self.broadcast_records.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            sched_cost_us: self.sched_cost_us.load(Ordering::Relaxed),
            sched_critical_us: self.sched_critical_us.load(Ordering::Relaxed),
            dataset_spills: self.dataset_spills.load(Ordering::Relaxed),
            dataset_spilled_bytes: self.dataset_spilled_bytes.load(Ordering::Relaxed),
            dataset_evictions: self.dataset_evictions.load(Ordering::Relaxed),
            dataset_recomputes: self.dataset_recomputes.load(Ordering::Relaxed),
            vectorized_batches: self.vectorized_batches.load(Ordering::Relaxed),
            row_fallback_stages: self.row_fallback_stages.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.logical_ops.store(0, Ordering::Relaxed);
        self.physical_stages.store(0, Ordering::Relaxed);
        self.shuffles.store(0, Ordering::Relaxed);
        self.sorted_shuffles.store(0, Ordering::Relaxed);
        self.shuffled_records.store(0, Ordering::Relaxed);
        self.shuffled_bytes.store(0, Ordering::Relaxed);
        self.spilled_records.store(0, Ordering::Relaxed);
        self.spilled_bytes.store(0, Ordering::Relaxed);
        self.spill_files.store(0, Ordering::Relaxed);
        self.broadcasts.store(0, Ordering::Relaxed);
        self.broadcast_records.store(0, Ordering::Relaxed);
        self.morsels.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.max_queue_depth.store(0, Ordering::Relaxed);
        self.sched_cost_us.store(0, Ordering::Relaxed);
        self.sched_critical_us.store(0, Ordering::Relaxed);
        self.dataset_spills.store(0, Ordering::Relaxed);
        self.dataset_spilled_bytes.store(0, Ordering::Relaxed);
        self.dataset_evictions.store(0, Ordering::Relaxed);
        self.dataset_recomputes.store(0, Ordering::Relaxed);
        self.vectorized_batches.store(0, Ordering::Relaxed);
        self.row_fallback_stages.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`Stats`], plus the **effective context
/// settings** that produced the counters. The settings fields default to
/// empty here and are filled by `Context::stats_snapshot`, which can see
/// the context; they make emitted `BENCH_*.json` rows self-describing
/// (a number without its backend/budget/scheduler is unreproducible).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Executor backend name (`local`, `tile`, `spill`, `morsel`); empty
    /// when the snapshot came from bare [`Stats::snapshot`].
    pub backend: String,
    /// Worker-thread count of the owning context (0 when unknown).
    pub workers: u64,
    /// Partition count of the owning context (0 when unknown).
    pub partitions: u64,
    /// Morsel size in rows (0 when unknown).
    pub morsel_size: u64,
    /// Global memory budget in bytes; `u64::MAX` means unbounded.
    pub memory_budget: u64,
    /// Dataset-cache memory budget in bytes; `u64::MAX` means unbounded.
    pub dataset_budget: u64,
    /// Scheduler flavor (`morsel` or `static`); empty when unknown.
    pub scheduler: String,
    /// Whether ordered (key-sorted) shuffle routing was in force.
    pub ordered: bool,
    /// Number of logical `Dataset` operator invocations (historically
    /// named `stages`; each operator call counts one regardless of how the
    /// executor fuses it).
    pub stages: u64,
    /// Number of physical per-partition passes the executor ran — a fused
    /// chain of narrow operators counts one.
    pub physical_stages: u64,
    /// Number of shuffle exchanges.
    pub shuffles: u64,
    /// Number of those exchanges that were key-ordered (sort-based
    /// shuffles whose buckets merge back globally key-sorted).
    pub sorted_shuffles: u64,
    /// Total rows moved across partitions by shuffles.
    pub shuffled_records: u64,
    /// Estimated bytes moved by shuffles.
    pub shuffled_bytes: u64,
    /// Rows written to spill runs by budget-bounded exchanges.
    pub spilled_records: u64,
    /// Encoded bytes written to spill runs.
    pub spilled_bytes: u64,
    /// Sorted spill runs written (each appended to its exchange's single
    /// spill file, so one run ≠ one open descriptor).
    pub spill_files: u64,
    /// Number of broadcasts.
    pub broadcasts: u64,
    /// Total rows broadcast.
    pub broadcast_records: u64,
    /// Scheduled stage tasks (morsels) executed by the worker pool. A
    /// stage that splits a partition into row spans counts one per span.
    pub morsels: u64,
    /// Morsels claimed from another worker's deque by an idle worker.
    pub steals: u64,
    /// High-water mark of a single worker deque's depth at stage
    /// submission (a gauge, not a counter — see [`StatsSnapshot::since`]).
    pub max_queue_depth: u64,
    /// Total wall microseconds spent inside scheduled stages.
    pub sched_cost_us: u64,
    /// The critical-path share of that time: each stage's wall time
    /// scaled by the busiest worker's fraction of the stage's scheduled
    /// rows. `sched_cost_us / sched_critical_us` is the speedup bound the
    /// schedule achieved (the load-balance limit, independent of how many
    /// hardware cores the host can actually run in parallel).
    pub sched_critical_us: u64,
    /// Dataset-cache entries demoted from memory to disk.
    pub dataset_spills: u64,
    /// Encoded bytes those demotions wrote.
    pub dataset_spilled_bytes: u64,
    /// Dataset-cache entries dropped outright under disk pressure (or a
    /// zero budget).
    pub dataset_evictions: u64,
    /// Evicted datasets re-derived from their plan lineage on a miss.
    pub dataset_recomputes: u64,
    /// Column batches executed through the vectorized per-column loops
    /// (the `columnar` backend; other backends leave this at zero).
    pub vectorized_batches: u64,
    /// Fused stages the columnar backend demoted to the tuple-at-a-time
    /// row path because a step carried no column expression (opaque UDF).
    pub row_fallback_stages: u64,
}

impl StatsSnapshot {
    /// The speedup bound the schedule achieved over the counted window:
    /// total scheduled-stage time divided by its busiest-worker share.
    /// `1.0` when everything ran on one worker; approaches the worker
    /// count as stages balance perfectly. Returns `None` when no stage
    /// ran (nothing to bound).
    pub fn sched_speedup(&self) -> Option<f64> {
        if self.sched_critical_us == 0 {
            return None;
        }
        Some(self.sched_cost_us as f64 / self.sched_critical_us as f64)
    }

    /// Difference of two snapshots (self - earlier). All counters
    /// subtract; `max_queue_depth` is a gauge and keeps `self`'s
    /// high-water value, and the settings fields carry over from `self`
    /// (a delta ran under the same effective configuration).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            backend: self.backend.clone(),
            workers: self.workers,
            partitions: self.partitions,
            morsel_size: self.morsel_size,
            memory_budget: self.memory_budget,
            dataset_budget: self.dataset_budget,
            scheduler: self.scheduler.clone(),
            ordered: self.ordered,
            stages: self.stages - earlier.stages,
            physical_stages: self.physical_stages - earlier.physical_stages,
            shuffles: self.shuffles - earlier.shuffles,
            sorted_shuffles: self.sorted_shuffles - earlier.sorted_shuffles,
            shuffled_records: self.shuffled_records - earlier.shuffled_records,
            shuffled_bytes: self.shuffled_bytes - earlier.shuffled_bytes,
            spilled_records: self.spilled_records - earlier.spilled_records,
            spilled_bytes: self.spilled_bytes - earlier.spilled_bytes,
            spill_files: self.spill_files - earlier.spill_files,
            broadcasts: self.broadcasts - earlier.broadcasts,
            broadcast_records: self.broadcast_records - earlier.broadcast_records,
            morsels: self.morsels - earlier.morsels,
            steals: self.steals - earlier.steals,
            max_queue_depth: self.max_queue_depth,
            sched_cost_us: self.sched_cost_us - earlier.sched_cost_us,
            sched_critical_us: self.sched_critical_us - earlier.sched_critical_us,
            dataset_spills: self.dataset_spills - earlier.dataset_spills,
            dataset_spilled_bytes: self.dataset_spilled_bytes - earlier.dataset_spilled_bytes,
            dataset_evictions: self.dataset_evictions - earlier.dataset_evictions,
            dataset_recomputes: self.dataset_recomputes - earlier.dataset_recomputes,
            vectorized_batches: self.vectorized_batches - earlier.vectorized_batches,
            row_fallback_stages: self.row_fallback_stages - earlier.row_fallback_stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = Stats::default();
        s.record_logical_op();
        s.record_physical_stage();
        s.record_physical_stage();
        s.record_shuffle(100, 800);
        s.record_shuffle(50, 400);
        s.record_sorted_shuffle();
        s.record_spill(40, 320, 2);
        s.record_broadcast(7);
        let snap = s.snapshot();
        assert_eq!(snap.stages, 1);
        assert_eq!(snap.physical_stages, 2);
        assert_eq!(snap.shuffles, 2);
        assert_eq!(snap.sorted_shuffles, 1);
        assert_eq!(snap.shuffled_records, 150);
        assert_eq!(snap.shuffled_bytes, 1200);
        assert_eq!(snap.spilled_records, 40);
        assert_eq!(snap.spilled_bytes, 320);
        assert_eq!(snap.spill_files, 2);
        assert_eq!(snap.broadcasts, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn schedule_counters_accumulate() {
        let s = Stats::default();
        s.record_stage_schedule(8, 2, 5, 1000, 400);
        s.record_stage_schedule(4, 0, 3, 1000, 600);
        let snap = s.snapshot();
        assert_eq!(snap.morsels, 12);
        assert_eq!(snap.steals, 2);
        assert_eq!(snap.max_queue_depth, 5, "gauge keeps the high water");
        assert_eq!(snap.sched_cost_us, 2000);
        assert_eq!(snap.sched_critical_us, 1000);
        assert_eq!(snap.sched_speedup(), Some(2.0));
        s.reset();
        assert_eq!(s.snapshot().sched_speedup(), None);
    }

    #[test]
    fn since_subtracts() {
        let s = Stats::default();
        s.record_shuffle(10, 80);
        s.record_physical_stage();
        let a = s.snapshot();
        s.record_shuffle(5, 40);
        s.record_physical_stage();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 5);
        assert_eq!(d.physical_stages, 1);
    }
}
