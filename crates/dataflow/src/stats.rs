//! Engine run statistics: logical operators, physical stages, shuffles,
//! broadcast sizes.
//!
//! The paper's evaluation reasons about *data shuffling* as the dominant
//! cost of DISC programs (§1: "all data exchanges across compute nodes are
//! done in a controlled way using DISC operations"). These counters let the
//! benchmark harness report how much each plan shuffles, which explains the
//! Figure 3 gaps (e.g. DIABLO's K-Means shuffles the whole point set while
//! the hand-written version shuffles only centroid-sized partials).
//!
//! Since the engine went lazy, the counters distinguish the two layers the
//! plan/fusion architecture separates:
//!
//! * **logical ops** ([`StatsSnapshot::stages`]) — how many `Dataset`
//!   operators a program *called*. This is the shape of the translated
//!   program, independent of execution strategy.
//! * **physical stages** ([`StatsSnapshot::physical_stages`]) — how many
//!   parallel per-partition passes the executor actually *ran* after
//!   fusing narrow chains. A chain of N narrow ops contributes N logical
//!   ops but exactly 1 physical stage.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters for one engine context.
#[derive(Debug, Default)]
pub struct Stats {
    logical_ops: AtomicU64,
    physical_stages: AtomicU64,
    shuffles: AtomicU64,
    sorted_shuffles: AtomicU64,
    shuffled_records: AtomicU64,
    shuffled_bytes: AtomicU64,
    spilled_records: AtomicU64,
    spilled_bytes: AtomicU64,
    spill_files: AtomicU64,
    broadcasts: AtomicU64,
    broadcast_records: AtomicU64,
}

impl Stats {
    pub(crate) fn record_logical_op(&self) {
        self.logical_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_physical_stage(&self) {
        self.physical_stages.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_shuffle(&self, records: u64, bytes: u64) {
        self.shuffles.fetch_add(1, Ordering::Relaxed);
        self.shuffled_records.fetch_add(records, Ordering::Relaxed);
        self.shuffled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_sorted_shuffle(&self) {
        self.sorted_shuffles.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_spill(&self, records: u64, bytes: u64, files: u64) {
        self.spilled_records.fetch_add(records, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_files.fetch_add(files, Ordering::Relaxed);
    }

    pub(crate) fn record_broadcast(&self, records: u64) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.broadcast_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            stages: self.logical_ops.load(Ordering::Relaxed),
            physical_stages: self.physical_stages.load(Ordering::Relaxed),
            shuffles: self.shuffles.load(Ordering::Relaxed),
            sorted_shuffles: self.sorted_shuffles.load(Ordering::Relaxed),
            shuffled_records: self.shuffled_records.load(Ordering::Relaxed),
            shuffled_bytes: self.shuffled_bytes.load(Ordering::Relaxed),
            spilled_records: self.spilled_records.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            spill_files: self.spill_files.load(Ordering::Relaxed),
            broadcasts: self.broadcasts.load(Ordering::Relaxed),
            broadcast_records: self.broadcast_records.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.logical_ops.store(0, Ordering::Relaxed);
        self.physical_stages.store(0, Ordering::Relaxed);
        self.shuffles.store(0, Ordering::Relaxed);
        self.sorted_shuffles.store(0, Ordering::Relaxed);
        self.shuffled_records.store(0, Ordering::Relaxed);
        self.shuffled_bytes.store(0, Ordering::Relaxed);
        self.spilled_records.store(0, Ordering::Relaxed);
        self.spilled_bytes.store(0, Ordering::Relaxed);
        self.spill_files.store(0, Ordering::Relaxed);
        self.broadcasts.store(0, Ordering::Relaxed);
        self.broadcast_records.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Number of logical `Dataset` operator invocations (historically
    /// named `stages`; each operator call counts one regardless of how the
    /// executor fuses it).
    pub stages: u64,
    /// Number of physical per-partition passes the executor ran — a fused
    /// chain of narrow operators counts one.
    pub physical_stages: u64,
    /// Number of shuffle exchanges.
    pub shuffles: u64,
    /// Number of those exchanges that were key-ordered (sort-based
    /// shuffles whose buckets merge back globally key-sorted).
    pub sorted_shuffles: u64,
    /// Total rows moved across partitions by shuffles.
    pub shuffled_records: u64,
    /// Estimated bytes moved by shuffles.
    pub shuffled_bytes: u64,
    /// Rows written to spill runs by budget-bounded exchanges.
    pub spilled_records: u64,
    /// Encoded bytes written to spill runs.
    pub spilled_bytes: u64,
    /// Sorted spill runs written (each appended to its exchange's single
    /// spill file, so one run ≠ one open descriptor).
    pub spill_files: u64,
    /// Number of broadcasts.
    pub broadcasts: u64,
    /// Total rows broadcast.
    pub broadcast_records: u64,
}

impl StatsSnapshot {
    /// Difference of two snapshots (self - earlier).
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            stages: self.stages - earlier.stages,
            physical_stages: self.physical_stages - earlier.physical_stages,
            shuffles: self.shuffles - earlier.shuffles,
            sorted_shuffles: self.sorted_shuffles - earlier.sorted_shuffles,
            shuffled_records: self.shuffled_records - earlier.shuffled_records,
            shuffled_bytes: self.shuffled_bytes - earlier.shuffled_bytes,
            spilled_records: self.spilled_records - earlier.spilled_records,
            spilled_bytes: self.spilled_bytes - earlier.spilled_bytes,
            spill_files: self.spill_files - earlier.spill_files,
            broadcasts: self.broadcasts - earlier.broadcasts,
            broadcast_records: self.broadcast_records - earlier.broadcast_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = Stats::default();
        s.record_logical_op();
        s.record_physical_stage();
        s.record_physical_stage();
        s.record_shuffle(100, 800);
        s.record_shuffle(50, 400);
        s.record_sorted_shuffle();
        s.record_spill(40, 320, 2);
        s.record_broadcast(7);
        let snap = s.snapshot();
        assert_eq!(snap.stages, 1);
        assert_eq!(snap.physical_stages, 2);
        assert_eq!(snap.shuffles, 2);
        assert_eq!(snap.sorted_shuffles, 1);
        assert_eq!(snap.shuffled_records, 150);
        assert_eq!(snap.shuffled_bytes, 1200);
        assert_eq!(snap.spilled_records, 40);
        assert_eq!(snap.spilled_bytes, 320);
        assert_eq!(snap.spill_files, 2);
        assert_eq!(snap.broadcasts, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn since_subtracts() {
        let s = Stats::default();
        s.record_shuffle(10, 80);
        s.record_physical_stage();
        let a = s.snapshot();
        s.record_shuffle(5, 40);
        s.record_physical_stage();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.shuffles, 1);
        assert_eq!(d.shuffled_records, 5);
        assert_eq!(d.physical_stages, 1);
    }
}
