//! # diablo-dataflow
//!
//! A from-scratch, multi-threaded, partitioned data-parallel engine — the
//! substitute for Apache Spark in this reproduction (the paper's evaluation
//! platform, §6). It is deliberately shaped like Spark's core, including
//! Spark's **lazy evaluation**: transformations build a plan; actions run
//! it.
//!
//! ## Architecture: plan → fuse → execute (on a pluggable backend)
//!
//! * a [`Dataset`] is an immutable bag of rows split into hash partitions,
//!   described by a lazy **physical plan** — a DAG of `PlanOp` nodes
//!   (`Scan`, `Map`, `Filter`, `FlatMap`, `MapPartitions`, `Union`) built
//!   by the operator methods without running anything;
//! * *narrow* operations (`map`, `filter`, `flat_map`, `union`) append a
//!   plan node and return immediately — no data moves, no threads run;
//! * plan execution belongs to the context's [`Executor`] — a public
//!   trait (`materialize`, `consume`, `shuffle`/`shuffle_by`, `exchange`,
//!   plus name/capability introspection) with three built-ins:
//!   [`LocalExecutor`] (tuple-at-a-time, default), [`TileExecutor`]
//!   (tile/batch-at-a-time inner loops for §5 tiled-matrix workloads),
//!   [`SpillExecutor`] (always-budgeted spilling exchanges plus
//!   adaptive stage re-chunking, for inputs larger than RAM), and
//!   [`ColumnarExecutor`] (typed column chunks with per-column inner
//!   loops for transparent fused chains, row-path fallback per stage for
//!   opaque UDFs — see `columnar.rs`).
//!   Select one with [`Context::with_executor`], `DIABLO_BACKEND`, or
//!   `diabloc --backend`; results are identical across backends;
//! * data crosses partitions only through the **Exchange API**: a
//!   pluggable [`Partitioner`] picks each key's destination bucket, and a
//!   streaming [`Exchange`] sink/reader pair moves rows under a memory
//!   budget ([`Context::with_memory_budget`], `DIABLO_MEMORY_BUDGET`) —
//!   buckets past the budget spill to sorted run files and merge-read
//!   back in source order, byte-identical to the in-memory exchange;
//! * the **sort-based shuffle path** (`Dataset::sorted_reduce_by_key`,
//!   `sorted_group_by_key`, `sorted_merge`, `sorted_cogroup`; routed
//!   under the plain keyed operators by [`Context::with_ordered`],
//!   `DIABLO_ORDERED`, or `diabloc --ordered`) samples keys, scatters
//!   through a [`RangePartitioner`] into a **key-ordered** exchange
//!   whose pre-sorted chunks — spilled runs included — merge back by
//!   key, and emits globally key-ordered output holding exactly the
//!   hash path's row multiset;
//! * at every **materialization point** — a shuffle (`group_by_key`,
//!   `reduce_by_key`, `cogroup`, `join`, the array-merge `⊳`), `collect`,
//!   `reduce`, or `broadcast` — the executor **fuses** the pending narrow
//!   chain into a single closure and runs it once per partition on the
//!   worker pool. A chain of N narrow operators costs one pass over the
//!   source rows and allocates no per-operator intermediate `Vec`;
//! * *shuffle* operations physically re-bucket rows by key hash before the
//!   next stage, exactly where Spark would exchange data across executors.
//!   Their scatter pass fuses the pending chain too, and the
//!   **shuffle-read side is lazy**: the post-shuffle reduce/group/combine
//!   is a pending plan node that fuses with the next consumer, so
//!   `reduce_by_key → map → shuffle` is two physical stages, not three;
//! * `reduce_by_key` performs map-side combining (Spark's combiner), which
//!   is what makes the Word-Count/Histogram/Group-By shapes of Figure 3
//!   come out right;
//! * broadcasts materialize a dataset on "all workers" (here: one shared
//!   `Arc`), mirroring Spark's broadcast variables used by the hand-written
//!   K-Means baseline.
//!
//! Fusion never changes results: output rows, their order, and all error
//! messages are bit-identical to operator-at-a-time execution (the
//! property tests in `tests/prop_fusion.rs` check this against an eager
//! reference).
//!
//! ## Observability
//!
//! [`Stats`] separates **logical operators** (how many `Dataset` methods a
//! program called — the plan's shape) from **physical stages** (how many
//! fused per-partition passes actually ran), plus shuffled records/bytes
//! and broadcast sizes, so benchmarks can report both data movement and
//! fusion wins. [`Context::start_plan_trace`] records a textual line per
//! physical stage — the engine-level "explain" that `diabloc --explain`
//! prints — and [`Dataset::explain`] renders a still-pending plan.

// This crate holds the workspace's only unsafe code (the worker pool's
// result slots and type-erased stage tasks); every unsafe block must say
// why it is sound, and CI runs the pool's unit tests under Miri.
#![warn(clippy::undocumented_unsafe_blocks)]

mod columnar;
mod dataset;
mod dscache;
mod exchange;
mod executor;
mod plan;
mod pool;
mod stats;
mod verify;

pub use columnar::{ColumnarExecutor, RowExpr};
pub use dataset::Dataset;
pub use exchange::{
    decode_value, encode_value, Exchange, ExchangeWriter, HashPartitioner, Partitioner,
    RangePartitioner,
};
pub use executor::{
    executor_named, Capabilities, Executor, LocalExecutor, MorselExecutor, PartitionTask,
    PhysicalPlan, ScatterTask, SpillExecutor, TileExecutor, BACKEND_NAMES,
};
pub use plan::{PartitionRows, Parts};
pub use stats::{Stats, StatsSnapshot};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use diablo_runtime::Value;

/// Handle to the engine: worker count, partition count, the execution
/// backend, and run statistics.
///
/// Cheap to clone; all clones share the same statistics and backend.
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

struct ContextInner {
    workers: usize,
    partitions: usize,
    /// Shared so long-lived handles (e.g. a columnar `DriveMode` carried
    /// inside plan partitions) can record without holding the context.
    stats: Arc<Stats>,
    op_counter: AtomicUsize,
    plan_trace: Mutex<Option<Vec<String>>>,
    executor: Mutex<Arc<dyn Executor>>,
    stmt_label: Mutex<Option<Arc<str>>>,
    /// Exchange memory budget in bytes; `u64::MAX` means unbounded.
    memory_budget: AtomicU64,
    /// Route keyed operators through the sort-based shuffle path.
    ordered: AtomicBool,
    /// The persistent work-stealing pool, built on first stage. Held in an
    /// `Arc` so [`Context::fork`]ed tenant contexts share one pool.
    pool: OnceLock<Arc<pool::WorkerPool>>,
    /// Rows per morsel when a stage splits oversized partitions.
    morsel_size: AtomicUsize,
    /// Run stages on the retained pre-morsel scheduler (baseline mode).
    static_scheduler: AtomicBool,
    /// The shared dataset cache (built on first use). Held in an `Arc`
    /// so [`Context::fork`]ed tenant contexts share one cache — and one
    /// dataset budget — the way they share one worker pool.
    dscache: OnceLock<Arc<dscache::DatasetCache>>,
}

impl Context {
    /// Creates a context with `workers` threads and `partitions` hash
    /// partitions per dataset. The execution backend defaults to
    /// [`LocalExecutor`], overridable with the `DIABLO_BACKEND`
    /// environment variable (`local`, `tile`, `spill`, `morsel`,
    /// `columnar`) or [`Context::with_executor`].
    pub fn new(workers: usize, partitions: usize) -> Context {
        assert!(workers > 0, "need at least one worker");
        assert!(partitions > 0, "need at least one partition");
        Context {
            inner: Arc::new(ContextInner {
                workers,
                partitions,
                stats: Arc::new(Stats::default()),
                op_counter: AtomicUsize::new(0),
                plan_trace: Mutex::new(None),
                executor: Mutex::new(executor::executor_from_env()),
                stmt_label: Mutex::new(None),
                memory_budget: AtomicU64::new(memory_budget_from_env()),
                ordered: AtomicBool::new(ordered_from_env()),
                pool: OnceLock::new(),
                morsel_size: AtomicUsize::new(morsel_size_from_env()),
                static_scheduler: AtomicBool::new(static_scheduler_from_env()),
                dscache: OnceLock::new(),
            }),
        }
    }

    /// A context sized to the machine: one worker per available core and
    /// two partitions per worker.
    pub fn default_parallel() -> Context {
        Context::sized(None, None)
    }

    /// A context sized from optional worker/partition counts; whatever is
    /// missing falls back to [`Context::default_parallel`]'s policy (one
    /// worker per available core, two partitions per worker). This is the
    /// single home of that policy — driver layers (`diabloc --workers/
    /// --partitions`) build partially specified shapes through it.
    pub fn sized(workers: Option<usize>, partitions: Option<usize>) -> Context {
        let w =
            workers.unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        Context::new(w, partitions.unwrap_or(w * 2))
    }

    /// A single-threaded context (used to isolate engine overhead from
    /// parallelism in benchmarks).
    pub fn sequential() -> Context {
        Context::new(1, 1)
    }

    /// Swaps the execution backend (builder style). Affects every clone of
    /// this context; call it before building datasets so all stages run on
    /// one backend.
    pub fn with_executor(self, executor: Arc<dyn Executor>) -> Context {
        self.set_executor(executor);
        self
    }

    /// Swaps the execution backend in place.
    pub fn set_executor(&self, executor: Arc<dyn Executor>) {
        *self.inner.executor.lock().expect("executor lock") = executor;
    }

    /// The execution backend.
    pub fn executor(&self) -> Arc<dyn Executor> {
        self.inner.executor.lock().expect("executor lock").clone()
    }

    /// Caps the bytes of exchanged rows a shuffle may buffer in memory
    /// (builder style): buckets past the budget spill to sorted run files
    /// and are merge-read back in source order, so results are identical
    /// to an unbounded exchange. Defaults to the `DIABLO_MEMORY_BUDGET`
    /// environment variable, else unbounded.
    pub fn with_memory_budget(self, bytes: u64) -> Context {
        self.set_memory_budget(Some(bytes));
        self
    }

    /// Sets (or clears, with `None`) the exchange memory budget in place.
    pub fn set_memory_budget(&self, bytes: Option<u64>) {
        self.inner
            .memory_budget
            .store(bytes.unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// The exchange memory budget in bytes, if one is set.
    pub fn memory_budget(&self) -> Option<u64> {
        match self.inner.memory_budget.load(Ordering::Relaxed) {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// Caps the bytes of **materialized datasets** the context keeps
    /// pinned in memory (builder style): forcing a dataset past the
    /// budget demotes the least-recently-used entries to disk files
    /// (re-read transparently), and entries past the disk ledger are
    /// dropped entirely and **recomputed from lineage** on the next
    /// read — so results are identical to an unbounded cache. A budget
    /// of `0` disables dataset caching: every re-read recomputes.
    /// Defaults to the `DIABLO_DATASET_BUDGET` environment variable,
    /// else unbounded.
    pub fn with_dataset_budget(self, bytes: u64) -> Context {
        self.set_dataset_budget(Some(bytes));
        self
    }

    /// Sets (or clears, with `None`) the dataset cache budget in place.
    pub fn set_dataset_budget(&self, bytes: Option<u64>) {
        self.dataset_cache().set_budget(bytes.unwrap_or(u64::MAX));
    }

    /// The dataset cache budget in bytes, if one is set.
    pub fn dataset_budget(&self) -> Option<u64> {
        match self.dataset_cache().budget() {
            u64::MAX => None,
            b => Some(b),
        }
    }

    /// The shared dataset cache (built on first use).
    pub(crate) fn dataset_cache(&self) -> &Arc<dscache::DatasetCache> {
        self.inner
            .dscache
            .get_or_init(|| Arc::new(dscache::DatasetCache::new(dataset_budget_from_env())))
    }

    /// Routes the keyed operators (`reduce_by_key`, `group_by_key`,
    /// `merge`, `cogroup` — and `join`, which builds on `cogroup`)
    /// through the **sort-based shuffle path** (builder style): keys are
    /// sampled, rows range-scattered so ordered keys stay in contiguous
    /// buckets, and every output is globally key-sorted. Same rows as the
    /// hash path, in key order instead of arrival order. Defaults to the
    /// `DIABLO_ORDERED` environment variable, else off.
    pub fn with_ordered(self, on: bool) -> Context {
        self.set_ordered(on);
        self
    }

    /// Sets (or clears) the sort-based keyed-operator routing in place.
    pub fn set_ordered(&self, on: bool) {
        self.inner.ordered.store(on, Ordering::Relaxed);
    }

    /// True when keyed operators route through the sort-based shuffle.
    pub fn ordered(&self) -> bool {
        self.inner.ordered.load(Ordering::Relaxed)
    }

    /// Sets the morsel size (builder style): the maximum rows one
    /// scheduling item covers when a stage splits oversized partitions.
    /// Defaults to the `DIABLO_MORSEL_SIZE` environment variable, else
    /// 16384 rows. Scheduling granularity only — results never change.
    pub fn with_morsel_size(self, rows: usize) -> Context {
        self.set_morsel_size(rows);
        self
    }

    /// Sets the morsel size in place.
    pub fn set_morsel_size(&self, rows: usize) {
        assert!(rows > 0, "morsel size must be at least 1 row");
        self.inner.morsel_size.store(rows, Ordering::Relaxed);
    }

    /// Rows per morsel when stages split oversized partitions.
    pub fn morsel_size(&self) -> usize {
        self.inner.morsel_size.load(Ordering::Relaxed)
    }

    /// Routes stages to the retained pre-morsel scheduler (one task per
    /// partition, no splitting or stealing) — the benchmark baseline.
    /// Defaults to the `DIABLO_SCHEDULER` environment variable
    /// (`morsel` / `static`), else the work-stealing pool.
    pub fn with_static_scheduler(self, on: bool) -> Context {
        self.set_static_scheduler(on);
        self
    }

    /// Sets (or clears) baseline-scheduler routing in place.
    pub fn set_static_scheduler(&self, on: bool) {
        self.inner.static_scheduler.store(on, Ordering::Relaxed);
    }

    /// True when stages run on the pre-morsel baseline scheduler.
    pub fn static_scheduler(&self) -> bool {
        self.inner.static_scheduler.load(Ordering::Relaxed)
    }

    /// The persistent work-stealing pool (built on first use).
    pub(crate) fn pool(&self) -> &pool::WorkerPool {
        self.inner
            .pool
            .get_or_init(|| Arc::new(pool::WorkerPool::new(self.inner.workers)))
    }

    /// A **tenant context**: a new context that shares this context's
    /// worker pool (and copies its shape and settings — workers,
    /// partitions, executor, memory budget, ordered routing, morsel size,
    /// scheduler) but owns fresh statistics, plan trace, and statement
    /// labels. This is the multi-tenant serving primitive: each request
    /// runs its session on a fork, so per-request statistics and
    /// statement-label plan tagging never interleave across concurrent
    /// requests, while every stage still schedules onto the one shared
    /// morsel pool. (The pool itself already tolerates concurrent
    /// submitters: a stage submitted while another is in flight runs
    /// inline on the submitting thread.)
    pub fn fork(&self) -> Context {
        let child = Context::new(self.workers(), self.partitions());
        child.set_executor(self.executor());
        child.set_memory_budget(self.memory_budget());
        child.set_ordered(self.ordered());
        child.set_morsel_size(self.morsel_size());
        child.set_static_scheduler(self.static_scheduler());
        // Share the parent's pool (forcing its creation): the OnceLock is
        // fresh on the child, so pre-filling it makes every child stage
        // schedule onto the parent's workers.
        let _ = self.pool();
        let shared = self.inner.pool.get().expect("pool just built").clone();
        let _ = child.inner.pool.set(shared);
        // Share the dataset cache too: all tenants cache under ONE
        // dataset budget, so concurrent sessions cannot multiply pinned
        // memory past it. (Cache-event counters still land on the
        // calling tenant's stats — the cache records against the
        // context passed into each operation.)
        let _ = child.inner.dscache.set(self.dataset_cache().clone());
        child
    }

    /// Sets (or clears) the source-statement label attached to plan nodes
    /// built from now on. Driver layers set this per statement so fused
    /// stages spanning several statements can report all of them, and so
    /// deferred operator errors name the statement they came from.
    pub fn set_statement_label(&self, label: Option<&str>) {
        *self.inner.stmt_label.lock().expect("label lock") = label.map(Arc::from);
    }

    /// The current source-statement label, if any.
    pub(crate) fn statement_label(&self) -> Option<Arc<str>> {
        self.inner.stmt_label.lock().expect("label lock").clone()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Number of partitions per dataset.
    pub fn partitions(&self) -> usize {
        self.inner.partitions
    }

    /// The run statistics.
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    /// A shared handle to the run statistics — what the columnar drive
    /// mode carries so vectorized-batch counts land on this context even
    /// when recorded deep inside plan execution.
    pub(crate) fn stats_arc(&self) -> Arc<Stats> {
        self.inner.stats.clone()
    }

    /// A statistics snapshot with the **effective context settings**
    /// (backend, workers, partitions, morsel size, memory budget,
    /// scheduler, ordered routing) filled in alongside the counters, so
    /// emitted benchmark rows are self-describing. [`Stats::snapshot`]
    /// alone leaves the settings at their empty defaults — it cannot see
    /// the context.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        snap.backend = self.executor().name().to_string();
        snap.workers = self.workers() as u64;
        snap.partitions = self.partitions() as u64;
        snap.morsel_size = self.morsel_size() as u64;
        snap.memory_budget = self.memory_budget().unwrap_or(u64::MAX);
        snap.dataset_budget = self.dataset_budget().unwrap_or(u64::MAX);
        snap.scheduler = if self.static_scheduler() {
            "static"
        } else {
            "morsel"
        }
        .to_string();
        snap.ordered = self.ordered();
        snap
    }

    /// Counts one logical `Dataset` operator invocation.
    pub(crate) fn record_logical_op(&self) {
        self.inner.op_counter.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.record_logical_op();
    }

    /// Counts one physical per-partition pass. Public so [`Executor`]
    /// implementations outside this crate can keep stage accounting
    /// honest; not meant for application code.
    pub fn record_physical_stage(&self) {
        self.inner.stats.record_physical_stage();
    }

    /// Starts recording a textual line per physical stage / shuffle /
    /// broadcast — the executed-plan trace behind `diabloc --explain`.
    pub fn start_plan_trace(&self) {
        *self.inner.plan_trace.lock().expect("trace lock") = Some(Vec::new());
    }

    /// Stops recording and returns the trace lines (empty if tracing was
    /// never started).
    pub fn take_plan_trace(&self) -> Vec<String> {
        self.inner
            .plan_trace
            .lock()
            .expect("trace lock")
            .take()
            .unwrap_or_default()
    }

    /// Appends a line to the plan trace; no-op unless tracing is active.
    /// Public so driver layers can interleave statement markers with the
    /// engine's stage lines.
    pub fn plan_note(&self, note: impl Into<String>) {
        if let Some(trace) = self.inner.plan_trace.lock().expect("trace lock").as_mut() {
            trace.push(note.into());
        }
    }

    /// Creates a dataset from a vector of rows, chunk-partitioned.
    pub fn from_vec(&self, rows: Vec<Value>) -> Dataset {
        Dataset::from_vec(self.clone(), rows)
    }

    /// Creates a dataset from explicit pre-built partitions, preserving
    /// their sizes exactly — the way to construct deliberately skewed
    /// inputs (e.g. one partition holding half the rows) for scheduler
    /// benchmarks and tests.
    pub fn from_partitions(&self, parts: Vec<Vec<Value>>) -> Dataset {
        Dataset::from_partitions(self.clone(), parts)
    }

    /// Creates a dataset of longs `lo..=hi`, range-partitioned.
    pub fn range(&self, lo: i64, hi: i64) -> Dataset {
        Dataset::range(self.clone(), lo, hi)
    }

    /// Creates an empty dataset.
    pub fn empty(&self) -> Dataset {
        Dataset::from_vec(self.clone(), Vec::new())
    }
}

/// The exchange budget named by `DIABLO_MEMORY_BUDGET` (bytes), or
/// unbounded. Panics on an unparseable value so a typo in a CI job fails
/// loudly instead of silently testing the in-memory path.
fn memory_budget_from_env() -> u64 {
    match std::env::var("DIABLO_MEMORY_BUDGET") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("DIABLO_MEMORY_BUDGET={s}: not a byte count")),
        Err(_) => u64::MAX,
    }
}

/// The dataset cache budget named by `DIABLO_DATASET_BUDGET` (bytes), or
/// unbounded. Panics on an unparseable value so a typo in a CI job fails
/// loudly instead of silently testing the unbounded cache.
fn dataset_budget_from_env() -> u64 {
    match std::env::var("DIABLO_DATASET_BUDGET") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("DIABLO_DATASET_BUDGET={s}: not a byte count")),
        Err(_) => u64::MAX,
    }
}

/// Whether `DIABLO_ORDERED` asks for sort-based keyed operators (`1`,
/// `true`, `yes`, case-insensitive). Panics on other values so a typo in
/// a CI job fails loudly instead of silently testing the hash path.
fn ordered_from_env() -> bool {
    match std::env::var("DIABLO_ORDERED") {
        Ok(s) => match s.to_ascii_lowercase().as_str() {
            "1" | "true" | "yes" => true,
            "0" | "false" | "no" | "" => false,
            _ => panic!("DIABLO_ORDERED={s}: expected 1/0, true/false, or yes/no"),
        },
        Err(_) => false,
    }
}

/// The morsel size named by `DIABLO_MORSEL_SIZE` (rows), or the 16384-row
/// default. Panics on an unparseable or zero value so a typo in a CI job
/// fails loudly instead of silently testing the default granularity.
fn morsel_size_from_env() -> usize {
    match std::env::var("DIABLO_MORSEL_SIZE") {
        Ok(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => panic!("DIABLO_MORSEL_SIZE={s}: expected a positive row count"),
        },
        Err(_) => 16384,
    }
}

/// Whether `DIABLO_SCHEDULER` asks for the pre-morsel baseline scheduler
/// (`static`) or the work-stealing pool (`morsel`, the default). Panics
/// on other values so a typo in a CI job fails loudly instead of silently
/// benchmarking the wrong scheduler.
fn static_scheduler_from_env() -> bool {
    match std::env::var("DIABLO_SCHEDULER") {
        Ok(s) => match s.to_ascii_lowercase().as_str() {
            "static" => true,
            "morsel" | "" => false,
            _ => panic!("DIABLO_SCHEDULER={s}: expected morsel or static"),
        },
        Err(_) => false,
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("workers", &self.inner.workers)
            .field("partitions", &self.inner.partitions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_reports_shape() {
        let ctx = Context::new(3, 7);
        assert_eq!(ctx.workers(), 3);
        assert_eq!(ctx.partitions(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Context::new(0, 1);
    }

    #[test]
    fn memory_budget_round_trips() {
        let ctx = Context::new(1, 2);
        ctx.set_memory_budget(Some(4096));
        assert_eq!(ctx.memory_budget(), Some(4096));
        assert_eq!(
            ctx.clone().memory_budget(),
            Some(4096),
            "clones share the budget"
        );
        ctx.set_memory_budget(None);
        assert_eq!(ctx.memory_budget(), None);
        let built = Context::new(1, 2).with_memory_budget(0);
        assert_eq!(built.memory_budget(), Some(0), "0 is a real budget");
    }

    #[test]
    fn dataset_budget_round_trips() {
        let ctx = Context::new(1, 2);
        if std::env::var("DIABLO_DATASET_BUDGET").is_err() {
            assert_eq!(ctx.dataset_budget(), None, "unbounded by default");
        }
        ctx.set_dataset_budget(Some(4096));
        assert_eq!(ctx.dataset_budget(), Some(4096));
        assert_eq!(
            ctx.clone().dataset_budget(),
            Some(4096),
            "clones share the budget"
        );
        assert_eq!(
            ctx.fork().dataset_budget(),
            Some(4096),
            "tenant forks share the cache and its budget"
        );
        ctx.set_dataset_budget(None);
        assert_eq!(ctx.dataset_budget(), None);
        let built = Context::new(1, 2).with_dataset_budget(0);
        assert_eq!(built.dataset_budget(), Some(0), "0 disables caching");
    }

    #[test]
    fn morsel_size_and_scheduler_round_trip() {
        let ctx = Context::new(2, 4).with_morsel_size(64);
        assert_eq!(ctx.morsel_size(), 64);
        assert_eq!(ctx.clone().morsel_size(), 64, "clones share the size");
        ctx.set_morsel_size(16384);
        assert_eq!(ctx.morsel_size(), 16384);
        let base = Context::new(2, 4).with_static_scheduler(true);
        assert!(base.static_scheduler());
        base.set_static_scheduler(false);
        assert!(!base.static_scheduler());
    }

    #[test]
    #[should_panic(expected = "at least 1 row")]
    fn zero_morsel_size_panics() {
        let _ = Context::new(1, 1).with_morsel_size(0);
    }

    #[test]
    fn plan_trace_records_between_start_and_take() {
        let ctx = Context::new(2, 4);
        ctx.plan_note("dropped");
        ctx.start_plan_trace();
        let d = ctx.range(1, 100);
        let _ = d
            .map(|v| Ok(v.clone()))
            .unwrap()
            .filter(|_| Ok(true))
            .unwrap()
            .collect();
        let trace = ctx.take_plan_trace();
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|l| l.contains("fused")), "{trace:?}");
        assert!(ctx.take_plan_trace().is_empty(), "trace was taken");
    }
}
