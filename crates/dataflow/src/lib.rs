//! # diablo-dataflow
//!
//! A from-scratch, multi-threaded, partitioned data-parallel engine — the
//! substitute for Apache Spark in this reproduction (the paper's evaluation
//! platform, §6). It is deliberately shaped like Spark's core:
//!
//! * a [`Dataset`] is an immutable bag of rows split into hash partitions;
//! * *narrow* operations (`map`, `filter`, `flat_map`) run per partition on
//!   a worker pool with no data movement;
//! * *shuffle* operations (`group_by_key`, `reduce_by_key`, `cogroup`,
//!   `join`, and the array-merge `⊳`) physically re-bucket rows by key hash
//!   before the next stage, exactly where Spark would exchange data across
//!   executors;
//! * `reduce_by_key` performs map-side combining (Spark's combiner), which
//!   is what makes the Word-Count/Histogram/Group-By shapes of Figure 3
//!   come out right;
//! * broadcasts materialize a dataset on "all workers" (here: one shared
//!   `Arc`), mirroring Spark's broadcast variables used by the hand-written
//!   K-Means baseline.
//!
//! [`Stats`] counts stages, shuffled records and bytes, so benchmarks can
//! report data-movement differences between DIABLO plans and hand-written
//! plans, not just wall-clock time.

mod dataset;
mod pool;
mod stats;

pub use dataset::Dataset;
pub use stats::{Stats, StatsSnapshot};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use diablo_runtime::Value;

/// Handle to the engine: worker count, partition count, and run statistics.
///
/// Cheap to clone; all clones share the same statistics.
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

struct ContextInner {
    workers: usize,
    partitions: usize,
    stats: Stats,
    stage_counter: AtomicUsize,
}

impl Context {
    /// Creates a context with `workers` threads and `partitions` hash
    /// partitions per dataset.
    pub fn new(workers: usize, partitions: usize) -> Context {
        assert!(workers > 0, "need at least one worker");
        assert!(partitions > 0, "need at least one partition");
        Context {
            inner: Arc::new(ContextInner {
                workers,
                partitions,
                stats: Stats::default(),
                stage_counter: AtomicUsize::new(0),
            }),
        }
    }

    /// A context sized to the machine: one worker per available core and
    /// two partitions per worker.
    pub fn default_parallel() -> Context {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Context::new(workers, workers * 2)
    }

    /// A single-threaded context (used to isolate engine overhead from
    /// parallelism in benchmarks).
    pub fn sequential() -> Context {
        Context::new(1, 1)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Number of partitions per dataset.
    pub fn partitions(&self) -> usize {
        self.inner.partitions
    }

    /// The run statistics.
    pub fn stats(&self) -> &Stats {
        &self.inner.stats
    }

    pub(crate) fn next_stage(&self) {
        self.inner.stage_counter.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.record_stage();
    }

    /// Creates a dataset from a vector of rows, chunk-partitioned.
    pub fn from_vec(&self, rows: Vec<Value>) -> Dataset {
        Dataset::from_vec(self.clone(), rows)
    }

    /// Creates a dataset of longs `lo..=hi`, range-partitioned.
    pub fn range(&self, lo: i64, hi: i64) -> Dataset {
        Dataset::range(self.clone(), lo, hi)
    }

    /// Creates an empty dataset.
    pub fn empty(&self) -> Dataset {
        Dataset::from_vec(self.clone(), Vec::new())
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("workers", &self.inner.workers)
            .field("partitions", &self.inner.partitions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_reports_shape() {
        let ctx = Context::new(3, 7);
        assert_eq!(ctx.workers(), 3);
        assert_eq!(ctx.partitions(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Context::new(0, 1);
    }
}
