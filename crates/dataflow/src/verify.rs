//! The plan-invariant verifier: structural checks on the fused `PlanOp`
//! DAG and on exchange output, run right before a plan executes.
//!
//! The optimizer and the operator layer are supposed to uphold a handful
//! of invariants by construction — every dataset holds at least one
//! partition, row nodes preserve their input's partition count, a
//! key-ordered exchange hands back key-sorted buckets holding exactly the
//! rows that were emitted into it. A bug that breaks one of them does not
//! fail at the broken site: it surfaces partitions later as missing rows,
//! mis-ordered merges, or a panic deep inside a fused stage. The verifier
//! turns each violation into a structured [`RuntimeError`] naming the
//! broken invariant at the point where it is still attributable.
//!
//! ## Gating
//!
//! Enabled by `DIABLO_VERIFY_PLAN=1`, disabled by `DIABLO_VERIFY_PLAN=0`;
//! any other value panics (house style: a typo in a CI job must fail
//! loudly, not silently skip verification). With the variable unset the
//! verifier follows `debug-assertions`: on in debug builds (so the whole
//! test suite runs verified), off in release builds (so benchmarks pay
//! nothing). The gate is re-read per plan execution, never cached.
//!
//! ## What is checked
//!
//! * **Plan shape** ([`verify_plan`], called from `materialize` and
//!   `consume`): every `Scan` leaf holds ≥ 1 partition (the public
//!   constructors assert this, so a zero-partition scan means a corrupt
//!   plan), and row nodes / unions sit over structurally valid inputs.
//! * **Exchange conservation** (`Exchange::finish`): the merged
//!   destination buckets hold exactly as many rows as the writers
//!   emitted — a lost spill chunk or a dropped in-memory chunk is caught
//!   here, not as silently missing output rows.
//! * **Ordered-exchange sortedness** (`Exchange::finish`): every bucket
//!   of a key-ordered exchange comes back globally key-sorted, the
//!   contract the sorted keyed operators (`sorted_reduce_by_key`, …)
//!   build on without re-sorting.
//! * **Dataset-cache row conservation** ([`verify_cached_partition`],
//!   called on every disk-tier read): each decoded partition of a
//!   disk-backed cache entry holds exactly the rows recorded when the
//!   entry spilled.
//!
//! Partitioner bucket range and ordered-exchange row shape are *always*
//! checked at [`ExchangeWriter::emit`](crate::ExchangeWriter::emit) —
//! those guard against arbitrary user `Partitioner` implementations, not
//! against engine bugs, so they are not gated.

use std::sync::Arc;

use diablo_runtime::RuntimeError;

use crate::plan::{PlanOp, Result};

/// Whether the verifier is on: `DIABLO_VERIFY_PLAN` (`1` / `0`, panic on
/// anything else), defaulting to `debug-assertions`. Re-read per call so
/// tests can flip it at runtime.
pub(crate) fn enabled() -> bool {
    match std::env::var("DIABLO_VERIFY_PLAN") {
        Ok(s) => match s.as_str() {
            "1" => true,
            "0" => false,
            _ => panic!("DIABLO_VERIFY_PLAN={s}: expected 1 or 0"),
        },
        Err(_) => cfg!(debug_assertions),
    }
}

/// Verifies the structural invariants of a plan DAG, returning a
/// structured error naming the first broken one. No-op when the verifier
/// is disabled.
pub(crate) fn verify_plan(plan: &Arc<PlanOp>) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    check(plan).map(|_| ())
}

/// Recursive walk: validates a node and returns its partition count.
fn check(plan: &PlanOp) -> Result<usize> {
    match plan {
        PlanOp::Scan(parts) => {
            if parts.is_empty() {
                return Err(violation(
                    "scan node has zero partitions — every dataset holds at least one \
                     (possibly empty) partition",
                ));
            }
            Ok(parts.len())
        }
        // Row nodes and partition-wise barriers preserve their input's
        // partition count.
        PlanOp::Map(input, _, _, _)
        | PlanOp::Filter(input, _, _, _)
        | PlanOp::FlatMap(input, _, _) => check(input),
        PlanOp::MapPartitions(input, _, _, _) => check(input),
        // A cached barrier stands in for its (structurally equivalent)
        // inner plan; on a cache miss that inner plan is what re-runs.
        PlanOp::Cached(_, inner) => check(inner),
        // Union keeps the left side's partition count; the right side
        // folds in by index modulo the left's count, so both operands
        // must be structurally valid.
        PlanOp::Union(l, r) => {
            let n = check(l)?;
            check(r)?;
            Ok(n)
        }
    }
}

/// Verifies what an exchange merge-read produced: `partitions` buckets
/// holding exactly `emitted` rows, each bucket key-sorted when the
/// exchange is ordered. No-op when the verifier is disabled.
pub(crate) fn verify_exchange_output(
    dest: &[Vec<diablo_runtime::Value>],
    partitions: usize,
    emitted: u64,
    ordered: bool,
) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    check_exchange_output(dest, partitions, emitted, ordered)
}

/// The ungated body of [`verify_exchange_output`].
fn check_exchange_output(
    dest: &[Vec<diablo_runtime::Value>],
    partitions: usize,
    emitted: u64,
    ordered: bool,
) -> Result<()> {
    if dest.len() != partitions {
        return Err(violation(format!(
            "exchange produced {} destination buckets for {partitions} partitions",
            dest.len()
        )));
    }
    let arrived: u64 = dest.iter().map(|b| b.len() as u64).sum();
    if arrived != emitted {
        return Err(violation(format!(
            "exchange emitted {emitted} rows but merged {arrived} back — rows were lost or \
             duplicated between the writers and the merge-read"
        )));
    }
    if ordered {
        for (b, bucket) in dest.iter().enumerate() {
            let sorted = bucket
                .windows(2)
                .all(|w| crate::exchange::pair_key(&w[0]) <= crate::exchange::pair_key(&w[1]));
            if !sorted {
                return Err(violation(format!(
                    "ordered exchange bucket {b} is not key-sorted after the merge — a chunk \
                     was flushed unsorted or the k-way merge mis-ordered its heads"
                )));
            }
        }
    }
    Ok(())
}

/// Verifies row conservation of one disk-backed dataset-cache partition:
/// the decoded row count must match what was recorded when the entry
/// spilled. No-op when the verifier is disabled.
pub(crate) fn verify_cached_partition(
    id: u64,
    partition: usize,
    expected: usize,
    got: usize,
) -> Result<()> {
    if !enabled() {
        return Ok(());
    }
    if got != expected {
        return Err(violation(format!(
            "disk-backed dataset {id} partition {partition} decoded {got} rows but {expected} \
             were spilled — rows were lost or duplicated in the dataset cache"
        )));
    }
    Ok(())
}

/// A structured verifier error: every message leads with `plan verifier:`
/// so callers and tests can tell an invariant violation from an ordinary
/// runtime error.
fn violation(msg: impl std::fmt::Display) -> RuntimeError {
    RuntimeError::new(format!("plan verifier: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_runtime::Value;

    #[test]
    fn zero_partition_scan_is_a_violation() {
        let plan = Arc::new(PlanOp::Scan(Arc::new(Vec::new())));
        let err = check(&plan).unwrap_err();
        assert!(err.message.contains("plan verifier"), "{err}");
        assert!(err.message.contains("zero partitions"), "{err}");
    }

    #[test]
    fn healthy_scan_reports_its_partition_count() {
        let plan = PlanOp::Scan(Arc::new(vec![vec![Value::Long(1)], vec![]]));
        assert_eq!(check(&plan).unwrap(), 2);
    }

    #[test]
    fn union_keeps_left_count_and_checks_both_sides() {
        let l = Arc::new(PlanOp::Scan(Arc::new(vec![vec![], vec![], vec![]])));
        let r = Arc::new(PlanOp::Scan(Arc::new(vec![vec![]])));
        assert_eq!(check(&PlanOp::Union(l.clone(), r)).unwrap(), 3);
        let bad = Arc::new(PlanOp::Scan(Arc::new(Vec::new())));
        assert!(check(&PlanOp::Union(l, bad)).is_err());
    }

    #[test]
    fn exchange_output_conservation_and_order() {
        let ok = vec![
            vec![Value::pair(Value::Long(1), Value::Unit)],
            vec![
                Value::pair(Value::Long(2), Value::Unit),
                Value::pair(Value::Long(5), Value::Unit),
            ],
        ];
        assert!(check_exchange_output(&ok, 2, 3, true).is_ok());
        // Lost row.
        let err = check_exchange_output(&ok, 2, 4, false).unwrap_err();
        assert!(err.message.contains("lost or"), "{err}");
        // Wrong bucket count.
        let err = check_exchange_output(&ok, 3, 3, false).unwrap_err();
        assert!(err.message.contains("destination buckets"), "{err}");
        // Unsorted ordered bucket.
        let unsorted = vec![vec![
            Value::pair(Value::Long(9), Value::Unit),
            Value::pair(Value::Long(2), Value::Unit),
        ]];
        let err = check_exchange_output(&unsorted, 1, 2, true).unwrap_err();
        assert!(err.message.contains("not key-sorted"), "{err}");
    }
}
