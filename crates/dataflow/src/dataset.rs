//! The partitioned [`Dataset`] and its operators, built over the lazy
//! physical plan of [`crate::plan`] and executed by the context's
//! pluggable [`Executor`](crate::Executor) backend.
//!
//! Rows are [`Value`]s. Keyed operators (`reduce_by_key`, `group_by_key`,
//! `cogroup`, `join`, `merge`) expect rows shaped as `(key, value)` pairs —
//! exactly the sparse-array representation of §3.4 — and hash-partition
//! rows by key before the reduction stage, which is the engine's shuffle.
//!
//! Narrow operators (`map`, `filter`, `flat_map`, `map_partitions`,
//! `union`) are **lazy**: they append a node to the dataset's plan and
//! return immediately. So are the **post-shuffle stages** of the keyed
//! operators: `reduce_by_key` runs its combine+scatter eagerly (the data
//! must move) but leaves the shuffle-read reduction as a pending
//! partition-wise plan node, so `reduce_by_key → map → shuffle` executes
//! in two physical stages, with the reduction fused into the next
//! scatter. Work happens at materialization points — shuffles,
//! [`Dataset::collect`], [`Dataset::reduce`], [`Dataset::broadcast`] —
//! where the executor fuses the pending chain into one physical
//! per-partition stage. Results are deterministic and bit-identical to
//! operator-at-a-time execution: a shuffle distributes rows by key hash,
//! and output order within a partition follows (source partition, source
//! position) order.
//!
//! A lazy dataset consumed by **several** downstream operators re-runs its
//! pending stage per consumer (each derivation captures the plan; only
//! [`Dataset::materialize`]/`force` fills the shared cache). Pin a reused
//! result with [`Dataset::materialize`] — the engine's equivalent of
//! Spark's `cache()` — as the hand-written baselines do for loop-carried
//! datasets. Pinned results live in the context's shared **dataset
//! cache** (an LRU under `DIABLO_DATASET_BUDGET` /
//! [`Context::with_dataset_budget`]): entries past the memory budget
//! demote to disk files, entries past the disk ledger are dropped and
//! transparently **recomputed from the plan** on the next read, and an
//! entry is released as soon as its last referencing dataset or plan is
//! dropped — or eagerly, with [`Dataset::unpersist`].
//!
//! Errors raised inside a fused chain surface at the materialization point
//! (which is why shuffles and `reduce` return `Result`); the infallible
//! accessors (`collect`, `count`) panic if a pending chain fails — use
//! [`Dataset::try_collect`] / [`Dataset::materialize`] where a deferred
//! error must be handled gracefully.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use diablo_runtime::{array::key_value, size::slice_size, RuntimeError, Value};

use crate::exchange::{pair_key, HashPartitioner, Partitioner, RangePartitioner};
use crate::executor::PhysicalPlan;
use crate::plan::{self, PartFn, PlanOp};
use crate::pool::run_stage;
use crate::Context;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// A borrowed map-side combiner, as threaded through the sorted-source
/// pass (internal).
type CombineRef<'a> = &'a (dyn Fn(&Value, &Value) -> Result<Value> + Sync);

/// An immutable, partitioned bag of rows with a lazy physical plan.
#[derive(Clone)]
pub struct Dataset {
    ctx: Context,
    plan: Arc<PlanOp>,
    /// This dataset's slot in the context's shared dataset cache: forcing
    /// fills the slot's entry (so a plan executes at most once no matter
    /// how many readers force it, while the entry stays resident), and
    /// dropping the last clone — of the dataset or of a plan derived
    /// from it — releases the entry. Unlike the old `Arc<OnceLock>` pin
    /// this keeps nothing alive the cache cannot evict.
    slot: Arc<crate::dscache::CacheSlot>,
}

pub(crate) fn key_hash(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl Dataset {
    /// Builds a dataset by chunking `rows` into the context's partitions.
    pub fn from_vec(ctx: Context, rows: Vec<Value>) -> Dataset {
        let p = ctx.partitions();
        let chunk = rows.len().div_ceil(p).max(1);
        let mut parts: Vec<Vec<Value>> = Vec::with_capacity(p);
        let mut it = rows.into_iter();
        for _ in 0..p {
            let part: Vec<Value> = it.by_ref().take(chunk).collect();
            parts.push(part);
        }
        Dataset::from_materialized(ctx, parts)
    }

    /// Builds a dataset from explicit pre-built partitions, preserving
    /// their number and sizes exactly — the way to construct deliberately
    /// skewed inputs for scheduler benchmarks and tests. The partition
    /// list must not be empty (an empty *partition* is fine).
    pub fn from_partitions(ctx: Context, parts: Vec<Vec<Value>>) -> Dataset {
        assert!(!parts.is_empty(), "need at least one partition");
        Dataset::from_materialized(ctx, parts)
    }

    /// Builds the dataset `{lo, ..., hi}` of longs, range-partitioned.
    pub fn range(ctx: Context, lo: i64, hi: i64) -> Dataset {
        let p = ctx.partitions() as i64;
        let n = (hi - lo + 1).max(0);
        let chunk = (n + p - 1) / p.max(1);
        let mut parts = Vec::with_capacity(p as usize);
        for i in 0..p {
            let start = lo + i * chunk;
            let end = (start + chunk - 1).min(hi);
            if start > hi {
                parts.push(Vec::new());
            } else {
                parts.push((start..=end).map(Value::Long).collect());
            }
        }
        Dataset::from_materialized(ctx, parts)
    }

    /// Wraps already-materialized partitions (internal): the plan is a
    /// `Scan`, so forcing is free.
    fn from_materialized(ctx: Context, parts: Vec<Vec<Value>>) -> Dataset {
        Dataset::from_shared_parts(ctx, Arc::new(parts))
    }

    /// Wraps **shared** already-materialized partitions without copying a
    /// row. The serving layer holds each named dataset as one
    /// `Arc<Vec<Vec<Value>>>` and hands every concurrent request a view
    /// over the same allocation; requests never clone the base data, only
    /// the `Arc`. The partition list must not be empty. Base data is
    /// never entered into the dataset cache — a `Scan` plan reads it
    /// directly.
    pub fn from_shared_parts(ctx: Context, parts: Arc<Vec<Vec<Value>>>) -> Dataset {
        assert!(!parts.is_empty(), "need at least one partition");
        let slot = Arc::new(crate::dscache::CacheSlot::new(ctx.dataset_cache().clone()));
        Dataset {
            ctx,
            plan: Arc::new(PlanOp::Scan(parts)),
            slot,
        }
    }

    /// Test-only hook: a dataset over a deliberately **malformed plan** —
    /// a zero-partition `Scan`, a shape the public constructors assert
    /// away — so integration tests can prove the plan verifier catches
    /// corrupt plans with a structured error instead of failing obscurely
    /// downstream. Hidden from docs; never use outside tests.
    #[doc(hidden)]
    pub fn malformed_zero_partition_scan_for_tests(ctx: Context) -> Dataset {
        let slot = Arc::new(crate::dscache::CacheSlot::new(ctx.dataset_cache().clone()));
        Dataset {
            ctx,
            plan: Arc::new(PlanOp::Scan(Arc::new(Vec::new()))),
            slot,
        }
    }

    /// A content fingerprint: FNV-1a 64 over the rows' canonical binary
    /// encoding ([`crate::encode_value`]) in cross-partition iteration
    /// order. Deliberately **partition-boundary independent** — the same
    /// bag split 2 ways or 8 ways fingerprints equal, so a cache key built
    /// on it survives repartitioning. Forces the dataset if still lazy;
    /// any append/update yields a new fingerprint, which is how the serve
    /// cache versions its inputs.
    pub fn fingerprint(&self) -> Result<u64> {
        let parts = self.force()?;
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut buf = Vec::new();
        for part in parts.iter() {
            for row in part {
                buf.clear();
                crate::exchange::encode_value(row, &mut buf)?;
                for b in &buf {
                    hash ^= u64::from(*b);
                    hash = hash.wrapping_mul(0x1_0000_01b3);
                }
            }
        }
        Ok(hash)
    }

    /// The plan downstream consumers should build on: once this dataset
    /// has been forced, a [`PlanOp::Cached`] barrier over its cache slot
    /// stands in for the original chain, so no operator re-executes an
    /// already-materialized upstream while the entry is resident — yet
    /// the cache can still evict the entry (the barrier carries the
    /// lineage to recompute it). An unforced dataset hands out its raw
    /// plan so narrow chains keep fusing across the derivation.
    fn effective_plan(&self) -> Arc<PlanOp> {
        if !matches!(self.plan.as_ref(), PlanOp::Scan(_))
            && self.ctx.dataset_cache().contains(self.slot.id())
        {
            Arc::new(PlanOp::Cached(self.slot.clone(), self.plan.clone()))
        } else {
            self.plan.clone()
        }
    }

    /// A new dataset one plan node deeper (internal).
    fn derived(&self, op: PlanOp) -> Dataset {
        let slot = Arc::new(crate::dscache::CacheSlot::new(
            self.ctx.dataset_cache().clone(),
        ));
        Dataset {
            ctx: self.ctx.clone(),
            plan: Arc::new(op),
            slot,
        }
    }

    /// The source-statement tag for plan nodes built right now.
    fn tag(&self) -> plan::Tag {
        self.ctx.statement_label()
    }

    /// Executes the pending plan through the context's executor (fusing
    /// the narrow chain into one physical stage per segment) and enters
    /// the partitions into the context's dataset cache. A cache hit
    /// skips execution; base data (`Scan` plans) bypasses the cache —
    /// it is already materialized and the cache could only evict what
    /// the plan holds anyway.
    pub(crate) fn force(&self) -> Result<Arc<Vec<Vec<Value>>>> {
        if matches!(self.plan.as_ref(), PlanOp::Scan(_)) {
            return Ok(self
                .ctx
                .executor()
                .materialize(&self.ctx, &PhysicalPlan::new(self.plan.clone()))?
                .into_arc());
        }
        let cache = self.ctx.dataset_cache().clone();
        if let Some(p) = cache.get(self.slot.id(), &self.ctx)? {
            return Ok(p);
        }
        let parts = self
            .ctx
            .executor()
            .materialize(&self.ctx, &PhysicalPlan::new(self.plan.clone()))?
            .into_arc();
        cache.insert(self.slot.id(), parts.clone(), &self.ctx)?;
        Ok(parts)
    }

    /// Forces the pending plan now, surfacing any deferred operator error,
    /// and returns a handle to the (now materialized) dataset.
    pub fn materialize(&self) -> Result<Dataset> {
        self.force()?;
        Ok(self.clone())
    }

    /// Eagerly releases this dataset's entry in the context's dataset
    /// cache — memory or disk — the engine's equivalent of Spark's
    /// `unpersist()`. The dataset stays usable: the next read recomputes
    /// from its plan (and re-enters the cache). A no-op when nothing is
    /// cached.
    pub fn unpersist(&self) {
        self.ctx.dataset_cache().remove(self.slot.id());
    }

    /// Renders the pending physical plan (the chains a materialization
    /// point would fuse) as text.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        plan::render(&self.effective_plan(), 0, &mut out);
        out
    }

    /// The engine context this dataset belongs to.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// True when the pending plan bottoms out in a `union` that has not
    /// been materialized — the case where reads stream the operands in
    /// place instead of building combined partitions.
    fn union_pending(&self) -> bool {
        !self.ctx.dataset_cache().contains(self.slot.id())
            && matches!(
                plan::collapse(&self.plan).base.as_ref(),
                PlanOp::Union(_, _)
            )
    }

    /// Number of rows.
    ///
    /// # Panics
    /// Panics if a pending operator in the plan fails; see
    /// [`Dataset::try_collect`].
    pub fn count(&self) -> usize {
        if self.union_pending() {
            // Count through the executor's segmented read: no operand is
            // copied, no combined partitions are built.
            let groups = self
                .ctx
                .executor()
                .consume(
                    &self.ctx,
                    &PhysicalPlan::new(self.plan.clone()),
                    "count (read in place)",
                    &|_, rows| {
                        let mut n = 0i64;
                        rows.for_each(&mut |_| {
                            n += 1;
                            Ok(())
                        })?;
                        Ok(vec![vec![Value::Long(n)]])
                    },
                )
                .expect("dataset materialization failed");
            return groups
                .into_iter()
                .flatten()
                .flatten()
                .map(|v| v.as_long().unwrap_or(0) as usize)
                .sum();
        }
        self.force()
            .expect("dataset materialization failed")
            .iter()
            .map(Vec::len)
            .sum()
    }

    /// Estimated serialized size of all rows, in bytes (sampled).
    ///
    /// # Panics
    /// Panics if a pending operator in the plan fails.
    pub fn estimated_bytes(&self) -> u64 {
        estimate_bytes(&self.force().expect("dataset materialization failed"))
    }

    /// Materializes all rows in partition order.
    ///
    /// # Panics
    /// Panics if a pending operator in the plan fails; see
    /// [`Dataset::try_collect`].
    pub fn collect(&self) -> Vec<Value> {
        self.try_collect().expect("dataset materialization failed")
    }

    /// Materializes all rows in partition order, surfacing deferred
    /// operator errors.
    ///
    /// A plan bottoming out in an unforced `union` is streamed straight
    /// out of the executor's segmented read: each surviving row is cloned
    /// exactly once, into the output — combined partitions are never
    /// built (and nothing is cached; the shared operands are re-read in
    /// place if collected again).
    pub fn try_collect(&self) -> Result<Vec<Value>> {
        if self.union_pending() {
            let groups = self.ctx.executor().consume(
                &self.ctx,
                &PhysicalPlan::new(self.plan.clone()),
                "collect (read in place)",
                &|_, rows| {
                    let mut out = Vec::new();
                    rows.for_each(&mut |v| {
                        out.push(v);
                        Ok(())
                    })?;
                    Ok(vec![out])
                },
            )?;
            return Ok(groups.into_iter().flatten().flatten().collect());
        }
        let parts = self.force()?;
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts.iter() {
            out.extend(p.iter().cloned());
        }
        Ok(out)
    }

    /// Materializes all rows sorted (for deterministic comparisons).
    ///
    /// # Panics
    /// Panics if a pending operator in the plan fails.
    pub fn collect_sorted(&self) -> Vec<Value> {
        let mut rows = self.collect();
        rows.sort();
        rows
    }

    /// Shares the whole dataset with every task — Spark's broadcast.
    pub fn broadcast(&self) -> Result<Arc<Vec<Value>>> {
        let rows = self.try_collect()?;
        self.ctx.stats().record_broadcast(rows.len() as u64);
        self.ctx
            .plan_note(format!("broadcast: {} rows to all workers", rows.len()));
        Ok(Arc::new(rows))
    }

    // ------------------------------------------------------------- narrow

    /// Applies `f` to every row (lazy: appends a plan node).
    pub fn map<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value) -> Result<Value> + Send + Sync + 'static,
    {
        self.ctx.record_logical_op();
        Ok(self.derived(PlanOp::Map(
            self.effective_plan(),
            Arc::new(f),
            self.tag(),
            None,
        )))
    }

    /// Applies a **transparent** row expression to every row (lazy). The
    /// closure the engine runs is derived from `expr`, and the expression
    /// itself rides the plan node — so the columnar backend can lower
    /// this step to per-column inner loops while every other backend
    /// executes it exactly like [`Dataset::map`].
    pub fn map_expr(&self, expr: crate::RowExpr) -> Result<Dataset> {
        self.ctx.record_logical_op();
        let expr = Arc::new(expr);
        let f = {
            let expr = expr.clone();
            move |row: &Value| expr.eval(row)
        };
        Ok(self.derived(PlanOp::Map(
            self.effective_plan(),
            Arc::new(f),
            self.tag(),
            Some(expr),
        )))
    }

    /// Applies `f` to every row, flattening the results (lazy).
    pub fn flat_map<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value) -> Result<Vec<Value>> + Send + Sync + 'static,
    {
        self.ctx.record_logical_op();
        Ok(self.derived(PlanOp::FlatMap(
            self.effective_plan(),
            Arc::new(f),
            self.tag(),
        )))
    }

    /// Keeps the rows satisfying `f` (lazy).
    pub fn filter<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value) -> Result<bool> + Send + Sync + 'static,
    {
        self.ctx.record_logical_op();
        Ok(self.derived(PlanOp::Filter(
            self.effective_plan(),
            Arc::new(f),
            self.tag(),
            None,
        )))
    }

    /// Keeps the rows satisfying a **transparent** predicate expression
    /// (lazy) — the filter counterpart of [`Dataset::map_expr`]. The
    /// expression must evaluate to a boolean per row; anything else is
    /// the usual `condition must be boolean` error.
    pub fn filter_expr(&self, expr: crate::RowExpr) -> Result<Dataset> {
        self.ctx.record_logical_op();
        let expr = Arc::new(expr);
        let f = {
            let expr = expr.clone();
            move |row: &Value| match expr.eval(row)? {
                Value::Bool(b) => Ok(b),
                _ => Err(RuntimeError::new("condition must be boolean")),
            }
        };
        Ok(self.derived(PlanOp::Filter(
            self.effective_plan(),
            Arc::new(f),
            self.tag(),
            Some(expr),
        )))
    }

    /// Partition-at-a-time transformation (Spark's `mapPartitions`; lazy).
    pub fn map_partitions<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&[Value]) -> Result<Vec<Value>> + Send + Sync + 'static,
    {
        self.ctx.record_logical_op();
        Ok(self.derived(PlanOp::MapPartitions(
            self.effective_plan(),
            Arc::new(f),
            "map_partitions",
            self.tag(),
        )))
    }

    /// Bag union (no dedup), preserving the left side's partition count.
    ///
    /// Lazy and narrow: it moves no data, runs no parallel stage, and the
    /// executor reads both operands in place via segments — including for
    /// a bare `collect`, which streams the rows without ever building
    /// combined partitions.
    pub fn union(&self, other: &Dataset) -> Dataset {
        self.ctx.record_logical_op();
        self.derived(PlanOp::Union(self.effective_plan(), other.effective_plan()))
    }

    /// Total reduction with a binary combiner: fused per-partition folds
    /// (including any pending narrow chain) followed by a driver-side fold
    /// over partial results (Spark's `reduce`). Returns `None` on an empty
    /// dataset.
    pub fn reduce<F>(&self, f: F) -> Result<Option<Value>>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Sync,
    {
        self.ctx.record_logical_op();
        let f = &f;
        let partials = self.ctx.executor().consume(
            &self.ctx,
            &PhysicalPlan::new(self.effective_plan()),
            "reduce (partial fold)",
            &|_, rows| {
                let mut acc: Option<Value> = None;
                rows.for_each(&mut |row| {
                    acc = Some(match acc.take() {
                        None => row,
                        Some(a) => f(&a, &row)?,
                    });
                    Ok(())
                })?;
                Ok(vec![acc.into_iter().collect()])
            },
        )?;
        let mut acc: Option<Value> = None;
        for p in partials.into_iter().flatten().flatten() {
            acc = Some(match acc {
                None => p,
                Some(a) => f(&a, &p)?,
            });
        }
        Ok(acc)
    }

    // ------------------------------------------------------------ shuffles

    /// Hash-partitions `(key, value)` rows by key — the raw shuffle,
    /// delegated to the executor. The scatter pass fuses the pending
    /// narrow chain, so a chain ending in a shuffle costs exactly one pass
    /// over the source rows. Returns per-destination buckets with
    /// deterministic row order.
    fn shuffle(&self, label: &str) -> Result<Vec<Vec<Value>>> {
        self.ctx
            .executor()
            .shuffle(&self.ctx, &PhysicalPlan::new(self.effective_plan()), label)
    }

    /// Wraps gathered shuffle buckets in a lazy partition-wise stage: the
    /// post-shuffle work becomes a pending plan node that fuses with
    /// whatever consumes it next (shuffle-read fusion).
    fn post_shuffle(&self, dest: Vec<Vec<Value>>, f: PartFn, label: &'static str) -> Dataset {
        self.derived(PlanOp::MapPartitions(
            Arc::new(PlanOp::Scan(Arc::new(dest))),
            f,
            label,
            self.tag(),
        ))
    }

    /// Re-partitions `(key, value)` rows by key hash.
    pub fn partition_by_key(&self) -> Result<Dataset> {
        self.ctx.record_logical_op();
        let dest = self.shuffle("partition_by_key (scatter)")?;
        Ok(Dataset::from_materialized(self.ctx.clone(), dest))
    }

    /// Re-partitions `(key, value)` rows with a pluggable
    /// [`Partitioner`](crate::Partitioner) — e.g. a
    /// [`RangePartitioner`](crate::RangePartitioner) keeps ordered keys in
    /// contiguous buckets so locally sorted partitions concatenate into
    /// globally sorted output.
    pub fn partition_by(&self, partitioner: &dyn crate::Partitioner) -> Result<Dataset> {
        self.ctx.record_logical_op();
        let dest = self.ctx.executor().shuffle_by(
            &self.ctx,
            &PhysicalPlan::new(self.effective_plan()),
            "partition_by (scatter)",
            partitioner,
        )?;
        Ok(Dataset::from_materialized(self.ctx.clone(), dest))
    }

    /// `reduceByKey`: combines values of equal keys with `f`, using
    /// map-side combining before the shuffle. Rows must be `(key, value)`
    /// pairs; the output has one `(key, combined)` row per distinct key.
    ///
    /// The pending narrow chain, the map-side combine, and the scatter all
    /// run in **one** fused physical stage. The post-shuffle reduction is
    /// lazy: it runs inside whatever stage consumes this dataset next, so
    /// `reduce_by_key → map → shuffle` costs two physical stages, not
    /// three.
    pub fn reduce_by_key<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Send + Sync + 'static,
    {
        if self.ctx.ordered() {
            return self.sorted_reduce_by_key(f);
        }
        self.ctx.record_logical_op();
        let p = self.ctx.partitions();
        let f = Arc::new(f);
        let exec = self.ctx.executor();
        let fc = &f;
        // Map-side combine, then stream the combined pairs straight into
        // the exchange sink: no all-partitions bucket matrix is ever
        // built, and buckets past the memory budget spill to disk.
        let dest = exec.exchange(
            &self.ctx,
            &PhysicalPlan::new(self.effective_plan()),
            "reduce_by_key (combine + scatter)",
            &|_, rows, sink| {
                let mut acc: HashMap<Value, Value> = HashMap::new();
                let mut order: Vec<Value> = Vec::new();
                rows.for_each(&mut |row| {
                    let (k, v) = key_value(&row)?;
                    match acc.get_mut(&k) {
                        Some(cur) => *cur = fc(cur, &v)?,
                        None => {
                            order.push(k.clone());
                            acc.insert(k, v);
                        }
                    }
                    Ok(())
                })?;
                for k in order {
                    let v = acc.remove(&k).expect("combined");
                    let b = HashPartitioner.partition(&k, p)?;
                    sink.emit(b, Value::pair(k, v))?;
                }
                Ok(())
            },
        )?;
        let reduce_fn: PartFn = Arc::new(move |bucket: &[Value]| {
            let mut acc: HashMap<Value, Value> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in bucket {
                let (k, v) = key_value(row)?;
                match acc.get_mut(&k) {
                    Some(cur) => *cur = f(cur, &v)?,
                    None => {
                        order.push(k.clone());
                        acc.insert(k, v);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let v = acc.remove(&k).expect("reduced");
                    Value::pair(k, v)
                })
                .collect::<Vec<_>>())
        });
        Ok(self.post_shuffle(dest, reduce_fn, "reduce_by_key (reduce)"))
    }

    /// `groupByKey`: shuffles `(key, value)` rows and produces one
    /// `(key, bag-of-values)` row per distinct key. The grouping stage is
    /// lazy and fuses with the next consumer.
    pub fn group_by_key(&self) -> Result<Dataset> {
        if self.ctx.ordered() {
            return self.sorted_group_by_key();
        }
        self.ctx.record_logical_op();
        let dest = self.shuffle("group_by_key (scatter)")?;
        let group_fn: PartFn = Arc::new(|bucket: &[Value]| {
            let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in bucket {
                let (k, v) = key_value(row)?;
                match groups.get_mut(&k) {
                    Some(g) => g.push(v),
                    None => {
                        order.push(k.clone());
                        groups.insert(k, vec![v]);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let vs = groups.remove(&k).expect("grouped");
                    Value::pair(k, Value::bag(vs))
                })
                .collect::<Vec<_>>())
        });
        Ok(self.post_shuffle(dest, group_fn, "group_by_key (group)"))
    }

    /// Zips two shuffled bucket lists into encoded single-row partitions
    /// `(bag(left), bag(right))` — the input of a lazy two-sided
    /// post-shuffle stage (internal).
    fn zip_buckets(left: Vec<Vec<Value>>, right: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        left.into_iter()
            .zip(right)
            .map(|(l, r)| vec![Value::pair(Value::bag(l), Value::bag(r))])
            .collect()
    }

    /// Decodes one `zip_buckets` partition back into its two sides.
    fn unzip_bucket(part: &[Value]) -> Result<(&[Value], &[Value])> {
        let [row] = part else {
            return Err(RuntimeError::new("corrupt two-sided shuffle partition"));
        };
        let fields = row
            .as_tuple()
            .filter(|t| t.len() == 2)
            .ok_or_else(|| RuntimeError::new("corrupt two-sided shuffle row"))?;
        match (fields[0].as_bag(), fields[1].as_bag()) {
            (Some(l), Some(r)) => Ok((l, r)),
            _ => Err(RuntimeError::new("corrupt two-sided shuffle bags")),
        }
    }

    /// `cogroup`: for each key present on either side, produces
    /// `(key, (left-bag, right-bag))`. Both scatters are eager; the
    /// grouping stage is lazy and fuses with the next consumer (which is
    /// how a `join`'s pair expansion and the map after it run in the
    /// grouping's stage).
    pub fn cogroup(&self, other: &Dataset) -> Result<Dataset> {
        if self.ctx.ordered() {
            return self.sorted_cogroup(other);
        }
        self.ctx.record_logical_op();
        let left = self.shuffle("cogroup (scatter left)")?;
        let right = other.shuffle("cogroup (scatter right)")?;
        let co_fn: PartFn = Arc::new(|part: &[Value]| {
            let (l, r) = Dataset::unzip_bucket(part)?;
            let mut groups: HashMap<Value, (Vec<Value>, Vec<Value>)> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in l {
                let (k, v) = key_value(row)?;
                match groups.get_mut(&k) {
                    Some(g) => g.0.push(v),
                    None => {
                        order.push(k.clone());
                        groups.insert(k, (vec![v], Vec::new()));
                    }
                }
            }
            for row in r {
                let (k, v) = key_value(row)?;
                match groups.get_mut(&k) {
                    Some(g) => g.1.push(v),
                    None => {
                        order.push(k.clone());
                        groups.insert(k, (Vec::new(), vec![v]));
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let (lv, rv) = groups.remove(&k).expect("cogrouped");
                    Value::pair(k, Value::pair(Value::bag(lv), Value::bag(rv)))
                })
                .collect::<Vec<_>>())
        });
        Ok(self.post_shuffle(
            Dataset::zip_buckets(left, right),
            co_fn,
            "cogroup (group both sides)",
        ))
    }

    /// Inner equi-join on `(key, value)` rows: produces
    /// `(key, (left, right))` for every matching pair. The pair expansion
    /// is lazy, so a `map` after a join fuses with it.
    pub fn join(&self, other: &Dataset) -> Result<Dataset> {
        let co = self.cogroup(other)?;
        co.flat_map(|row| {
            let (k, bags) = key_value(row)?;
            let fields = bags
                .as_tuple()
                .ok_or_else(|| RuntimeError::new("cogroup row shape"))?;
            let (Some(ls), Some(rs)) = (fields[0].as_bag(), fields[1].as_bag()) else {
                return Err(RuntimeError::new("cogroup bags"));
            };
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for l in ls {
                for r in rs {
                    out.push(Value::pair(k.clone(), Value::pair(l.clone(), r.clone())));
                }
            }
            Ok(out)
        })
    }

    /// The array merge `self ⊳ updates` (§3.4), implemented as a cogroup.
    ///
    /// With `combine = None`, colliding keys take the update value
    /// (right-biased, the paper's `⊳`). With `combine = Some(f)`, colliding
    /// keys become `f(old, new)` — the merge form used for incremental
    /// updates `d ⊕= e` (§3.7); duplicate update keys are also combined
    /// with `f` first.
    ///
    /// Both scatters are eager; the slot-combining stage is lazy, so the
    /// merged array fuses into whatever reads it next.
    pub fn merge<F>(&self, updates: &Dataset, combine: Option<F>) -> Result<Dataset>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Send + Sync + 'static,
    {
        if self.ctx.ordered() {
            return self.sorted_merge(updates, combine);
        }
        self.ctx.record_logical_op();
        let old = self.shuffle("merge (scatter old)")?;
        let new = updates.shuffle("merge (scatter updates)")?;
        let merge_fn: PartFn = Arc::new(move |part: &[Value]| {
            let (olds, news) = Dataset::unzip_bucket(part)?;
            // Old side: arrays have unique keys; keep the last if not.
            let mut slots: HashMap<Value, Value> = HashMap::with_capacity(olds.len());
            let mut order: Vec<Value> = Vec::with_capacity(olds.len());
            for row in olds {
                let (k, v) = key_value(row)?;
                if slots.insert(k.clone(), v).is_none() {
                    order.push(k);
                }
            }
            for row in news {
                let (k, v) = key_value(row)?;
                match slots.get_mut(&k) {
                    Some(cur) => {
                        *cur = match &combine {
                            Some(f) => f(cur, &v)?,
                            None => v,
                        };
                    }
                    None => {
                        order.push(k.clone());
                        slots.insert(k, v);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let v = slots.remove(&k).expect("merged");
                    Value::pair(k, v)
                })
                .collect::<Vec<_>>())
        });
        Ok(self.post_shuffle(
            Dataset::zip_buckets(old, new),
            merge_fn,
            "merge ⊳ (combine slots)",
        ))
    }

    // -------------------------------------------------- sorted shuffles

    /// Per-source key-sorted rows for a sort-based shuffle: one fused
    /// stage runs the pending narrow chain, validates the `(key, value)`
    /// shape in canonical row order (so first errors match the hash
    /// path's scatter), applies the optional map-side combiner, and
    /// stably sorts each source partition by key.
    fn sorted_sources(
        &self,
        label: &str,
        combine: Option<CombineRef<'_>>,
    ) -> Result<Vec<Vec<Value>>> {
        let groups = self.ctx.executor().consume(
            &self.ctx,
            &PhysicalPlan::new(self.effective_plan()),
            label,
            &|_, rows| {
                let mut out: Vec<Value> = Vec::new();
                match combine {
                    Some(f) => {
                        let mut acc: HashMap<Value, Value> = HashMap::new();
                        rows.for_each(&mut |row| {
                            let (k, v) = key_value(&row)?;
                            match acc.get_mut(&k) {
                                Some(cur) => *cur = f(cur, &v)?,
                                None => {
                                    acc.insert(k, v);
                                }
                            }
                            Ok(())
                        })?;
                        // Combined keys are unique, so the key sort below
                        // fully determines the order — no need to track
                        // first-seen order like the hash-path combiner.
                        out.extend(acc.into_iter().map(|(k, v)| Value::pair(k, v)));
                    }
                    None => {
                        rows.for_each(&mut |row| {
                            key_value(&row)?;
                            out.push(row);
                            Ok(())
                        })?;
                    }
                }
                out.sort_by(|a, b| pair_key(a).cmp(pair_key(b)));
                Ok(vec![out])
            },
        )?;
        Ok(groups
            .into_iter()
            .map(|g| g.into_iter().flatten().collect())
            .collect())
    }

    /// Range bounds sampled from key-sorted sources: up to 64 evenly
    /// spaced keys per source (quantile-ish, since the rows are sorted)
    /// plus each source's maximum. Deterministic, so every backend and
    /// budget derives identical bounds.
    fn sample_partitioner<'a>(
        sources: impl Iterator<Item = &'a Vec<Value>>,
        partitions: usize,
    ) -> RangePartitioner {
        const KEYS_PER_SOURCE: usize = 64;
        let mut sample: Vec<Value> = Vec::new();
        for rows in sources {
            let Some(last) = rows.last() else { continue };
            let stride = rows.len().div_ceil(KEYS_PER_SOURCE).max(1);
            sample.extend(rows.iter().step_by(stride).map(|r| pair_key(r).clone()));
            sample.push(pair_key(last).clone());
        }
        RangePartitioner::from_sample(sample, partitions)
    }

    /// Range-scatters key-sorted sources through the executor's
    /// key-ordered exchange; the merged buckets come back globally
    /// key-sorted and contiguous, so concatenating them in partition
    /// order yields totally key-ordered output.
    fn sorted_shuffle(
        &self,
        sources: Vec<Vec<Value>>,
        partitioner: &RangePartitioner,
        label: &str,
    ) -> Result<Vec<Vec<Value>>> {
        self.ctx.plan_note(format!(
            "sorted shuffle ({label}): {} partitioner, {} sampled bound(s) over {} buckets",
            Partitioner::name(partitioner),
            partitioner.bounds().len(),
            self.ctx.partitions()
        ));
        self.ctx
            .executor()
            .exchange_sorted(&self.ctx, sources, label, partitioner)
    }

    /// Sort-based `reduceByKey`: combines values of equal keys like
    /// [`Dataset::reduce_by_key`], but samples the combined keys, range-
    /// scatters through a key-ordered exchange, and merge-reduces each
    /// (already key-sorted) bucket in one linear scan — no hash map on
    /// the read side. The output is **globally key-ordered**: partitions
    /// hold contiguous key ranges in ascending order, and each partition
    /// is sorted. Same `(key, combined)` multiset as the hash path.
    ///
    /// The combine+sort pass and the lazy merge-reduce are the only two
    /// physical stages — shuffle-read fusion works exactly as on the hash
    /// path, so `sorted_reduce_by_key → map → collect` is 2 stages.
    pub fn sorted_reduce_by_key<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Send + Sync + 'static,
    {
        self.ctx.record_logical_op();
        let f = Arc::new(f);
        let sources = self.sorted_sources(
            "sorted_reduce_by_key (combine + sort)",
            Some(&|a: &Value, b: &Value| f(a, b)),
        )?;
        let part = Dataset::sample_partitioner(sources.iter(), self.ctx.partitions());
        let dest = self.sorted_shuffle(sources, &part, "sorted_reduce_by_key (range scatter)")?;
        let reduce_fn: PartFn = Arc::new(move |bucket: &[Value]| {
            let mut out: Vec<Value> = Vec::new();
            Dataset::for_each_key_run(bucket, |k, vs| {
                let mut it = vs.into_iter();
                let mut acc = it.next().expect("non-empty key run");
                for v in it {
                    acc = f(&acc, &v)?;
                }
                out.push(Value::pair(k, acc));
                Ok(())
            })?;
            Ok(out)
        });
        Ok(self.post_shuffle(
            dest,
            reduce_fn,
            "sorted_reduce_by_key (merge-reduce, range)",
        ))
    }

    /// Sort-based `groupByKey`: like [`Dataset::group_by_key`], but the
    /// output is globally key-ordered and each bag keeps the hash path's
    /// value order (source-partition order, then emission order) — equal
    /// keys ride through the ordered exchange in `(source, sequence,
    /// emission)` order. Grouping is one linear scan over each key-sorted
    /// bucket, lazy and fused with the next consumer.
    pub fn sorted_group_by_key(&self) -> Result<Dataset> {
        self.ctx.record_logical_op();
        let sources = self.sorted_sources("sorted_group_by_key (sort)", None)?;
        let part = Dataset::sample_partitioner(sources.iter(), self.ctx.partitions());
        let dest = self.sorted_shuffle(sources, &part, "sorted_group_by_key (range scatter)")?;
        let group_fn: PartFn = Arc::new(|bucket: &[Value]| {
            let mut out: Vec<Value> = Vec::new();
            Dataset::for_each_key_run(bucket, |k, vs| {
                out.push(Value::pair(k, Value::bag(vs)));
                Ok(())
            })?;
            Ok(out)
        });
        Ok(self.post_shuffle(dest, group_fn, "sorted_group_by_key (merge-group, range)"))
    }

    /// Scans a key-sorted bucket as `(key, value-run)` groups, calling
    /// `emit` once per distinct key with the values in bucket order —
    /// the one state machine behind every sorted post-shuffle stage.
    fn for_each_key_run(
        rows: &[Value],
        mut emit: impl FnMut(Value, Vec<Value>) -> Result<()>,
    ) -> Result<()> {
        let mut i = 0usize;
        while i < rows.len() {
            let (k, _) = key_value(&rows[i])?;
            let mut vs = Vec::new();
            Dataset::take_key_run(rows, &mut i, &k, &mut vs)?;
            emit(k, vs)?;
        }
        Ok(())
    }

    /// Advances `rows[*i]` past every pair whose key equals `key`,
    /// collecting the values — one group of a merge-join scan.
    fn take_key_run(
        rows: &[Value],
        i: &mut usize,
        key: &Value,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        while *i < rows.len() {
            let (k, v) = key_value(&rows[*i])?;
            if k != *key {
                break;
            }
            out.push(v);
            *i += 1;
        }
        Ok(())
    }

    /// The smaller of the two cursors' keys — the next key a merge-join
    /// scan over two key-sorted sides emits.
    fn next_merge_key(l: Option<&Value>, r: Option<&Value>) -> Result<Value> {
        match (l, r) {
            (Some(a), Some(b)) => {
                let (ka, kb) = (pair_key(a), pair_key(b));
                Ok(if ka <= kb { ka.clone() } else { kb.clone() })
            }
            (Some(a), None) => Ok(pair_key(a).clone()),
            (None, Some(b)) => Ok(pair_key(b).clone()),
            (None, None) => Err(RuntimeError::new("merge-join scan past both sides")),
        }
    }

    /// Sort-based `cogroup`: same `(key, (left-bag, right-bag))` rows as
    /// [`Dataset::cogroup`] (bags included, value-for-value), emitted in
    /// global key order. Both sides range-scatter with **one shared**
    /// sampled partitioner so their buckets align; the grouping stage is
    /// a lazy merge-join over the two key-sorted sides.
    pub fn sorted_cogroup(&self, other: &Dataset) -> Result<Dataset> {
        self.ctx.record_logical_op();
        let left = self.sorted_sources("sorted_cogroup (sort left)", None)?;
        let right = other.sorted_sources("sorted_cogroup (sort right)", None)?;
        let part =
            Dataset::sample_partitioner(left.iter().chain(right.iter()), self.ctx.partitions());
        let ldest = self.sorted_shuffle(left, &part, "sorted_cogroup (range scatter left)")?;
        let rdest = self.sorted_shuffle(right, &part, "sorted_cogroup (range scatter right)")?;
        let co_fn: PartFn = Arc::new(|part: &[Value]| {
            let (l, r) = Dataset::unzip_bucket(part)?;
            let mut out: Vec<Value> = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < l.len() || j < r.len() {
                let k = Dataset::next_merge_key(l.get(i), r.get(j))?;
                let mut lv = Vec::new();
                Dataset::take_key_run(l, &mut i, &k, &mut lv)?;
                let mut rv = Vec::new();
                Dataset::take_key_run(r, &mut j, &k, &mut rv)?;
                out.push(Value::pair(k, Value::pair(Value::bag(lv), Value::bag(rv))));
            }
            Ok(out)
        });
        Ok(self.post_shuffle(
            Dataset::zip_buckets(ldest, rdest),
            co_fn,
            "sorted_cogroup (merge-join, range)",
        ))
    }

    /// Sort-based array merge `self ⊳ updates`: the same per-key slot
    /// values as [`Dataset::merge`] (replace on `None`, fold with `f` on
    /// `Some` — duplicate update keys folded in emission order), emitted
    /// in global key order via a merge-join over the two key-sorted,
    /// range-aligned sides.
    pub fn sorted_merge<F>(&self, updates: &Dataset, combine: Option<F>) -> Result<Dataset>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Send + Sync + 'static,
    {
        self.ctx.record_logical_op();
        let old = self.sorted_sources("sorted merge ⊳ (sort old)", None)?;
        let new = updates.sorted_sources("sorted merge ⊳ (sort updates)", None)?;
        let part = Dataset::sample_partitioner(old.iter().chain(new.iter()), self.ctx.partitions());
        let odest = self.sorted_shuffle(old, &part, "sorted merge ⊳ (range scatter old)")?;
        let ndest = self.sorted_shuffle(new, &part, "sorted merge ⊳ (range scatter updates)")?;
        let merge_fn: PartFn = Arc::new(move |part: &[Value]| {
            let (olds, news) = Dataset::unzip_bucket(part)?;
            let mut out: Vec<Value> = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < olds.len() || j < news.len() {
                let k = Dataset::next_merge_key(olds.get(i), news.get(j))?;
                let mut ov = Vec::new();
                Dataset::take_key_run(olds, &mut i, &k, &mut ov)?;
                // Old side: arrays have unique keys; keep the last if not.
                let mut slot = ov.pop();
                let mut nv = Vec::new();
                Dataset::take_key_run(news, &mut j, &k, &mut nv)?;
                for v in nv {
                    slot = Some(match (&slot, &combine) {
                        (Some(cur), Some(f)) => f(cur, &v)?,
                        _ => v,
                    });
                }
                out.push(Value::pair(k, slot.expect("at least one side")));
            }
            Ok(out)
        });
        Ok(self.post_shuffle(
            Dataset::zip_buckets(odest, ndest),
            merge_fn,
            "sorted merge ⊳ (merge-join slots, range)",
        ))
    }

    /// Pairwise partition zip (Spark's `zipPartitions`) — requires equal
    /// partition counts; used by the tiled-matrix path (§5), which keeps
    /// operand tilings aligned to avoid shuffles. Forces both sides.
    pub fn zip_partitions<F>(&self, other: &Dataset, f: F) -> Result<Dataset>
    where
        F: Fn(&[Value], &[Value]) -> Result<Vec<Value>> + Sync,
    {
        let a = self.force()?;
        let b = other.force()?;
        if a.len() != b.len() {
            return Err(RuntimeError::new(
                "zip_partitions requires equal partition counts",
            ));
        }
        self.ctx.record_logical_op();
        self.ctx.record_physical_stage();
        let stage = self.ctx.stats().snapshot().physical_stages;
        self.ctx.plan_note(format!(
            "stage {stage}: zip_partitions over {} partitions",
            a.len()
        ));
        let pairs: Vec<(&Vec<Value>, &Vec<Value>)> = a.iter().zip(b.iter()).collect();
        let parts = run_stage(&self.ctx, &pairs, |_, (x, y)| f(x, y))?;
        Ok(Dataset::from_materialized(self.ctx.clone(), parts))
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let shape = match self.plan.as_ref() {
            // Base data is never cached; its shape is on the plan itself.
            PlanOp::Scan(parts) => Some((parts.len(), parts.iter().map(Vec::len).sum::<usize>())),
            _ => self.ctx.dataset_cache().shape(self.slot.id()),
        };
        match shape {
            Some((partitions, rows)) => f
                .debug_struct("Dataset")
                .field("partitions", &partitions)
                .field("rows", &rows)
                .finish(),
            None => f
                .debug_struct("Dataset")
                .field("plan", &self.explain())
                .finish(),
        }
    }
}

/// Sampled byte estimate: measure up to 32 rows per partition and scale.
pub(crate) fn estimate_bytes(parts: &[Vec<Value>]) -> u64 {
    let mut total = 0u64;
    for p in parts {
        if p.is_empty() {
            continue;
        }
        let sample_n = p.len().min(32);
        let sample: u64 = slice_size(&p[..sample_n]) as u64;
        total += sample * p.len() as u64 / sample_n as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_runtime::BinOp;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn ctx() -> Context {
        Context::new(4, 8)
    }

    fn pairs(ctx: &Context, entries: &[(i64, i64)]) -> Dataset {
        ctx.from_vec(
            entries
                .iter()
                .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
                .collect(),
        )
    }

    #[test]
    fn map_filter_flat_map() {
        let ctx = ctx();
        let d = ctx.range(1, 100);
        let doubled = d.map(|v| BinOp::Mul.apply(v, &Value::Long(2))).unwrap();
        assert_eq!(doubled.count(), 100);
        let evens = d.filter(|v| Ok(v.as_long().unwrap() % 2 == 0)).unwrap();
        assert_eq!(evens.count(), 50);
        let dup = d.flat_map(|v| Ok(vec![v.clone(), v.clone()])).unwrap();
        assert_eq!(dup.count(), 200);
    }

    #[test]
    fn narrow_ops_are_lazy_until_materialized() {
        let ctx = ctx();
        let calls = Arc::new(AtomicUsize::new(0));
        let d = ctx.range(1, 10);
        let c = calls.clone();
        let mapped = d
            .map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                Ok(v.clone())
            })
            .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0, "map must not run eagerly");
        assert_eq!(mapped.count(), 10);
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        // The cache means a second read does not re-run the chain.
        assert_eq!(mapped.count(), 10);
        assert_eq!(calls.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn derived_ops_build_on_cached_materialization() {
        // Once a dataset is forced, downstream operators must read its
        // cached partitions, never re-execute the upstream chain.
        let ctx = ctx();
        let calls = Arc::new(AtomicUsize::new(0));
        let c = calls.clone();
        let mapped = ctx
            .range(1, 10)
            .map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                Ok(v.clone())
            })
            .unwrap();
        assert_eq!(mapped.count(), 10);
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        let downstream = mapped.filter(|_| Ok(true)).unwrap();
        assert_eq!(downstream.count(), 10);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            10,
            "deriving from a forced dataset must not re-run its chain"
        );
        let keyed = mapped
            .map(|v| Ok(Value::pair(v.clone(), Value::Long(1))))
            .unwrap();
        let _ = keyed
            .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
            .unwrap()
            .collect();
        assert_eq!(
            calls.load(Ordering::Relaxed),
            10,
            "shuffles reuse the cache too"
        );
    }

    #[test]
    fn union_shuffle_reads_operands_in_place() {
        // A keyed aggregation over a union consumes both operands via
        // segments: one physical stage for combine+scatter, no
        // materialization of the combined partitions.
        let ctx = ctx();
        let a = pairs(&ctx, &[(1, 1), (2, 2), (3, 3)]);
        let b = pairs(&ctx, &[(1, 10), (2, 20)]);
        let u = a.union(&b);
        let before = ctx.stats().snapshot();
        let r = u.reduce_by_key(|x, y| BinOp::Add.apply(x, y)).unwrap();
        let rows = r.collect_sorted();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(
            after.physical_stages, 2,
            "combine+scatter fused over union segments, then reduce: {after:?}"
        );
        assert_eq!(
            rows,
            vec![
                Value::pair(Value::Long(1), Value::Long(11)),
                Value::pair(Value::Long(2), Value::Long(22)),
                Value::pair(Value::Long(3), Value::Long(3)),
            ]
        );
    }

    #[test]
    fn bare_union_collect_streams_without_combined_partitions() {
        // A bare collect of an unprocessed union reads both operands in
        // place through the executor — one fused stage, rows streamed
        // straight into the output.
        let ctx = ctx();
        let a = ctx.range(1, 100);
        let b = ctx.range(101, 200);
        let u = a.union(&b);
        let before = ctx.stats().snapshot();
        let rows = u.try_collect().unwrap();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(rows.len(), 200);
        assert_eq!(after.physical_stages, 1, "{after:?}");
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(sorted, (1..=200).map(Value::Long).collect::<Vec<_>>());
        // count() streams too, and clones nothing.
        assert_eq!(u.count(), 200);
    }

    #[test]
    fn narrow_chain_fuses_into_one_physical_stage() {
        let ctx = ctx();
        let d = ctx.range(1, 1000);
        let chained = d
            .map(|v| BinOp::Mul.apply(v, &Value::Long(3)))
            .unwrap()
            .filter(|v| Ok(v.as_long().unwrap() % 2 == 0))
            .unwrap()
            .flat_map(|v| Ok(vec![v.clone(), v.clone()]))
            .unwrap()
            .map(|v| BinOp::Add.apply(v, &Value::Long(1)))
            .unwrap();
        let before = ctx.stats().snapshot();
        let rows = chained.collect();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(after.physical_stages, 1, "4 narrow ops fuse into 1 stage");
        assert_eq!(rows.len(), 1000);
    }

    #[test]
    fn fused_chain_matches_stepwise_materialization() {
        let ctx = ctx();
        let d = ctx.range(1, 200);
        let fused = d
            .map(|v| BinOp::Mul.apply(v, &Value::Long(2)))
            .unwrap()
            .filter(|v| Ok(v.as_long().unwrap() % 3 == 0))
            .unwrap()
            .flat_map(|v| Ok(vec![v.clone(), Value::Long(-v.as_long().unwrap())]))
            .unwrap();
        let stepwise = d
            .map(|v| BinOp::Mul.apply(v, &Value::Long(2)))
            .unwrap()
            .materialize()
            .unwrap()
            .filter(|v| Ok(v.as_long().unwrap() % 3 == 0))
            .unwrap()
            .materialize()
            .unwrap()
            .flat_map(|v| Ok(vec![v.clone(), Value::Long(-v.as_long().unwrap())]))
            .unwrap();
        assert_eq!(fused.collect(), stepwise.collect());
    }

    #[test]
    fn explain_renders_pending_chain() {
        let ctx = ctx();
        let d = ctx.range(1, 10);
        let chained = d
            .map(|v| Ok(v.clone()))
            .unwrap()
            .filter(|_| Ok(true))
            .unwrap();
        let plan = chained.explain();
        assert!(plan.contains("scan"), "{plan}");
        assert!(plan.contains("map"), "{plan}");
        assert!(plan.contains("filter"), "{plan}");
        assert!(plan.contains("fused"), "{plan}");
    }

    #[test]
    fn range_covers_inclusive_bounds() {
        let ctx = ctx();
        let d = ctx.range(5, 9);
        assert_eq!(
            d.collect_sorted(),
            (5..=9).map(Value::Long).collect::<Vec<_>>()
        );
        assert_eq!(ctx.range(3, 2).count(), 0, "empty range");
    }

    #[test]
    fn reduce_sums() {
        let ctx = ctx();
        let d = ctx.range(1, 1000);
        let sum = d.reduce(|a, b| BinOp::Add.apply(a, b)).unwrap().unwrap();
        assert_eq!(sum, Value::Long(500500));
        assert_eq!(
            ctx.empty().reduce(|a, b| BinOp::Add.apply(a, b)).unwrap(),
            None
        );
    }

    #[test]
    fn reduce_fuses_pending_chain() {
        let ctx = ctx();
        let d = ctx.range(1, 100);
        let before = ctx.stats().snapshot();
        let sum = d
            .map(|v| BinOp::Mul.apply(v, &Value::Long(2)))
            .unwrap()
            .filter(|v| Ok(v.as_long().unwrap() <= 100))
            .unwrap()
            .reduce(|a, b| BinOp::Add.apply(a, b))
            .unwrap()
            .unwrap();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(sum, Value::Long((1..=50).map(|x| x * 2).sum::<i64>()));
        assert_eq!(
            after.physical_stages, 1,
            "chain + fold in one pass: {after:?}"
        );
    }

    #[test]
    fn reduce_by_key_combines_across_partitions() {
        let ctx = ctx();
        let entries: Vec<(i64, i64)> = (0..1000).map(|i| (i % 10, 1)).collect();
        let d = pairs(&ctx, &entries);
        let before = ctx.stats().snapshot();
        let r = d.reduce_by_key(|a, b| BinOp::Add.apply(a, b)).unwrap();
        let mut rows = r.collect_sorted();
        let after = ctx.stats().snapshot().since(&before);
        rows.sort();
        assert_eq!(rows.len(), 10);
        for row in rows {
            let (_, v) = key_value(&row).unwrap();
            assert_eq!(v, Value::Long(100));
        }
        // Map-side combining means at most partitions × keys rows shuffle.
        assert!(
            after.shuffled_records <= (8 * 10) as u64,
            "combiner limits shuffle: {after:?}"
        );
        // Combine+scatter fuse into one stage; the shuffle-read reduce is
        // the second (fused with the collect).
        assert_eq!(after.physical_stages, 2, "{after:?}");
    }

    #[test]
    fn reduce_by_key_then_map_then_shuffle_is_two_stages() {
        // Shuffle-read fusion: the post-shuffle reduce runs inside the
        // next scatter's stage, so reduce_by_key → map → shuffle costs 2
        // physical stages, not 3.
        let ctx = ctx();
        let entries: Vec<(i64, i64)> = (0..500).map(|i| (i % 20, 1)).collect();
        let d = pairs(&ctx, &entries);
        let before = ctx.stats().snapshot();
        let r = d
            .reduce_by_key(|a, b| BinOp::Add.apply(a, b))
            .unwrap()
            .map(|row| {
                let (k, v) = key_value(row)?;
                Ok(Value::pair(v, k))
            })
            .unwrap()
            .partition_by_key()
            .unwrap();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(
            after.physical_stages, 2,
            "combine+scatter, then reduce+map+scatter: {after:?}"
        );
        assert_eq!(r.count(), 20);
    }

    #[test]
    fn group_by_key_collects_bags() {
        let ctx = ctx();
        let d = pairs(&ctx, &[(1, 10), (2, 20), (1, 30)]);
        let g = d.group_by_key().unwrap();
        let rows = g.collect_sorted();
        assert_eq!(rows.len(), 2);
        let (k, bag) = key_value(&rows[0]).unwrap();
        assert_eq!(k, Value::Long(1));
        let mut items = bag.as_bag().unwrap().to_vec();
        items.sort();
        assert_eq!(items, vec![Value::Long(10), Value::Long(30)]);
    }

    #[test]
    fn join_matches_keys() {
        let ctx = ctx();
        let l = pairs(&ctx, &[(1, 10), (2, 20), (3, 30)]);
        let r = pairs(&ctx, &[(2, 200), (3, 300), (4, 400)]);
        let j = l.join(&r).unwrap();
        let mut rows = j.collect_sorted();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                Value::pair(
                    Value::Long(2),
                    Value::pair(Value::Long(20), Value::Long(200))
                ),
                Value::pair(
                    Value::Long(3),
                    Value::pair(Value::Long(30), Value::Long(300))
                ),
            ]
        );
    }

    #[test]
    fn join_duplicates_produce_cross_products() {
        let ctx = ctx();
        let l = pairs(&ctx, &[(1, 10), (1, 11)]);
        let r = pairs(&ctx, &[(1, 100), (1, 101)]);
        assert_eq!(l.join(&r).unwrap().count(), 4);
    }

    #[test]
    fn merge_replaces_and_combines() {
        let ctx = ctx();
        let old = pairs(&ctx, &[(1, 10), (2, 20)]);
        let upd = pairs(&ctx, &[(2, 5), (3, 30)]);
        let replaced = old
            .merge(&upd, None::<fn(&Value, &Value) -> Result<Value>>)
            .unwrap();
        assert_eq!(
            replaced.collect_sorted(),
            vec![
                Value::pair(Value::Long(1), Value::Long(10)),
                Value::pair(Value::Long(2), Value::Long(5)),
                Value::pair(Value::Long(3), Value::Long(30)),
            ]
        );
        let combined = old
            .merge(&upd, Some(|a: &Value, b: &Value| BinOp::Add.apply(a, b)))
            .unwrap();
        assert_eq!(
            combined.collect_sorted(),
            vec![
                Value::pair(Value::Long(1), Value::Long(10)),
                Value::pair(Value::Long(2), Value::Long(25)),
                Value::pair(Value::Long(3), Value::Long(30)),
            ]
        );
    }

    #[test]
    fn cogroup_covers_one_sided_keys() {
        let ctx = ctx();
        let l = pairs(&ctx, &[(1, 10)]);
        let r = pairs(&ctx, &[(2, 20)]);
        let co = l.cogroup(&r).unwrap();
        let rows = co.collect_sorted();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn union_keeps_duplicates() {
        let ctx = ctx();
        let a = pairs(&ctx, &[(1, 1)]);
        let b = pairs(&ctx, &[(1, 1)]);
        assert_eq!(a.union(&b).count(), 2);
    }

    #[test]
    fn union_runs_no_physical_stage_and_fuses_downstream() {
        let ctx = ctx();
        let a = ctx.range(1, 100);
        let b = ctx.range(101, 200);
        let before = ctx.stats().snapshot();
        let u = a.union(&b);
        let mid = ctx.stats().snapshot().since(&before);
        assert_eq!(mid.physical_stages, 0, "union moves no data: {mid:?}");
        // A map above the union is pushed into both branches.
        let mapped = u.map(|v| BinOp::Add.apply(v, &Value::Long(1))).unwrap();
        let sum = mapped
            .reduce(|a, b| BinOp::Add.apply(a, b))
            .unwrap()
            .unwrap();
        assert_eq!(sum, Value::Long((2..=201).sum::<i64>()));
    }

    #[test]
    fn errors_surface_at_materialization() {
        let ctx = ctx();
        let d = ctx.range(0, 100);
        let mapped = d
            .map(|v| {
                if v.as_long() == Some(50) {
                    Err(RuntimeError::new("boom"))
                } else {
                    Ok(v.clone())
                }
            })
            .unwrap();
        let err = mapped.try_collect();
        assert!(err.is_err());
        // Shuffle paths surface the same error through their Result.
        let keyed = ctx
            .range(0, 100)
            .map(|v| {
                if v.as_long() == Some(50) {
                    Err(RuntimeError::new("boom"))
                } else {
                    Ok(Value::pair(v.clone(), Value::Long(1)))
                }
            })
            .unwrap();
        assert!(keyed.reduce_by_key(|a, b| BinOp::Add.apply(a, b)).is_err());
    }

    #[test]
    fn fused_errors_carry_statement_tags() {
        // A statement label set while a plan node is built prefixes any
        // error that node later raises — error locality under laziness.
        let ctx = ctx();
        ctx.set_statement_label(Some("s1: X := boom"));
        let d = ctx
            .range(0, 10)
            .map(|v| {
                if v.as_long() == Some(5) {
                    Err(RuntimeError::new("boom"))
                } else {
                    Ok(v.clone())
                }
            })
            .unwrap();
        ctx.set_statement_label(None);
        // Materialization happens later, in a different "statement".
        let err = d.try_collect().unwrap_err();
        assert!(err.message.contains("s1: X := boom"), "{err}");
        assert!(err.message.contains("boom"), "{err}");
    }

    #[test]
    fn zip_partitions_pairs_up() {
        let ctx = Context::new(2, 4);
        let a = ctx.from_vec((0..8).map(Value::Long).collect());
        let b = ctx.from_vec((100..108).map(Value::Long).collect());
        let z = a
            .zip_partitions(&b, |xs, ys| {
                xs.iter()
                    .zip(ys)
                    .map(|(x, y)| BinOp::Add.apply(x, y))
                    .collect::<Result<Vec<_>>>()
            })
            .unwrap();
        assert_eq!(z.count(), 8);
        let sum = z.reduce(|a, b| BinOp::Add.apply(a, b)).unwrap().unwrap();
        assert_eq!(
            sum,
            Value::Long((0..8).sum::<i64>() + (100..108).sum::<i64>())
        );
    }

    #[test]
    fn broadcast_counts_in_stats() {
        let ctx = ctx();
        let d = ctx.range(0, 9);
        let before = ctx.stats().snapshot();
        let b = d.broadcast().unwrap();
        assert_eq!(b.len(), 10);
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(after.broadcasts, 1);
        assert_eq!(after.broadcast_records, 10);
    }

    #[test]
    fn shuffle_determinism() {
        let ctx = ctx();
        let entries: Vec<(i64, i64)> = (0..500).map(|i| (i % 37, i)).collect();
        let d = pairs(&ctx, &entries);
        let a = d.group_by_key().unwrap().collect();
        let b = d.group_by_key().unwrap().collect();
        assert_eq!(a, b, "repeated shuffles are deterministic");
    }
}
