//! The partitioned [`Dataset`] and its operators.
//!
//! Rows are [`Value`]s. Keyed operators (`reduce_by_key`, `group_by_key`,
//! `cogroup`, `join`, `merge`) expect rows shaped as `(key, value)` pairs —
//! exactly the sparse-array representation of §3.4 — and hash-partition
//! rows by key before the reduction stage, which is the engine's shuffle.
//!
//! All operators are eager and deterministic: a shuffle distributes rows by
//! key hash, and output order within a partition follows (source partition,
//! source position) order, so repeated runs produce identical results.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use diablo_runtime::{array::key_value, size::slice_size, RuntimeError, Value};

use crate::pool::run_stage;
use crate::Context;

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// An immutable, partitioned bag of rows.
#[derive(Clone)]
pub struct Dataset {
    ctx: Context,
    parts: Arc<Vec<Vec<Value>>>,
}

fn key_hash(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

impl Dataset {
    /// Builds a dataset by chunking `rows` into the context's partitions.
    pub fn from_vec(ctx: Context, rows: Vec<Value>) -> Dataset {
        let p = ctx.partitions();
        let chunk = rows.len().div_ceil(p).max(1);
        let mut parts: Vec<Vec<Value>> = Vec::with_capacity(p);
        let mut it = rows.into_iter();
        for _ in 0..p {
            let part: Vec<Value> = it.by_ref().take(chunk).collect();
            parts.push(part);
        }
        Dataset { ctx, parts: Arc::new(parts) }
    }

    /// Builds the dataset `{lo, ..., hi}` of longs, range-partitioned.
    pub fn range(ctx: Context, lo: i64, hi: i64) -> Dataset {
        let p = ctx.partitions() as i64;
        let n = (hi - lo + 1).max(0);
        let chunk = (n + p - 1) / p.max(1);
        let mut parts = Vec::with_capacity(p as usize);
        for i in 0..p {
            let start = lo + i * chunk;
            let end = (start + chunk - 1).min(hi);
            if start > hi {
                parts.push(Vec::new());
            } else {
                parts.push((start..=end).map(Value::Long).collect());
            }
        }
        Dataset { ctx, parts: Arc::new(parts) }
    }

    /// Rebuilds a dataset from explicit partitions (internal).
    fn from_parts(ctx: Context, parts: Vec<Vec<Value>>) -> Dataset {
        Dataset { ctx, parts: Arc::new(parts) }
    }

    /// The engine context this dataset belongs to.
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Number of rows.
    pub fn count(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Estimated serialized size of all rows, in bytes (sampled).
    pub fn estimated_bytes(&self) -> u64 {
        estimate_bytes(&self.parts)
    }

    /// Materializes all rows in partition order.
    pub fn collect(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.count());
        for p in self.parts.iter() {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Materializes all rows sorted (for deterministic comparisons).
    pub fn collect_sorted(&self) -> Vec<Value> {
        let mut rows = self.collect();
        rows.sort();
        rows
    }

    /// Shares the whole dataset with every task — Spark's broadcast.
    pub fn broadcast(&self) -> Arc<Vec<Value>> {
        let rows = self.collect();
        self.ctx.stats().record_broadcast(rows.len() as u64);
        Arc::new(rows)
    }

    // ------------------------------------------------------------- narrow

    /// Applies `f` to every row.
    pub fn map<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value) -> Result<Value> + Sync,
    {
        self.ctx.next_stage();
        let parts = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| {
            part.iter().map(&f).collect::<Result<Vec<_>>>()
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// Applies `f` to every row, flattening the results.
    pub fn flat_map<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value) -> Result<Vec<Value>> + Sync,
    {
        self.ctx.next_stage();
        let parts = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| {
            let mut out = Vec::with_capacity(part.len());
            for row in part {
                out.extend(f(row)?);
            }
            Ok(out)
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// Keeps the rows satisfying `f`.
    pub fn filter<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value) -> Result<bool> + Sync,
    {
        self.ctx.next_stage();
        let parts = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| {
            let mut out = Vec::with_capacity(part.len());
            for row in part {
                if f(row)? {
                    out.push(row.clone());
                }
            }
            Ok(out)
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// Partition-at-a-time transformation (Spark's `mapPartitions`).
    pub fn map_partitions<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&[Value]) -> Result<Vec<Value>> + Sync,
    {
        self.ctx.next_stage();
        let parts = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| f(part))?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// Bag union (no dedup), preserving partition count.
    pub fn union(&self, other: &Dataset) -> Dataset {
        self.ctx.next_stage();
        let mut parts: Vec<Vec<Value>> = self.parts.as_ref().clone();
        let n = parts.len();
        for (i, p) in other.parts.iter().enumerate() {
            parts[i % n].extend(p.iter().cloned());
        }
        Dataset::from_parts(self.ctx.clone(), parts)
    }

    /// Total reduction with a binary combiner: per-partition folds followed
    /// by a fold over partial results (Spark's `reduce`). Returns `None` on
    /// an empty dataset.
    pub fn reduce<F>(&self, f: F) -> Result<Option<Value>>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Sync,
    {
        self.ctx.next_stage();
        let partials = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| {
            let mut acc: Option<Value> = None;
            for row in part {
                acc = Some(match acc {
                    None => row.clone(),
                    Some(a) => f(&a, row)?,
                });
            }
            Ok(acc)
        })?;
        let mut acc: Option<Value> = None;
        for p in partials.into_iter().flatten() {
            acc = Some(match acc {
                None => p,
                Some(a) => f(&a, &p)?,
            });
        }
        Ok(acc)
    }

    // ------------------------------------------------------------ shuffles

    /// Hash-partitions `(key, value)` rows by key — the raw shuffle.
    /// Returns per-destination buckets with deterministic row order.
    fn shuffle(&self) -> Result<Vec<Vec<Value>>> {
        let p = self.ctx.partitions();
        // Each source partition scatters into p buckets in parallel.
        let scattered = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| {
            let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); p];
            for row in part {
                let (k, _) = key_value(row)?;
                let b = (key_hash(&k) % p as u64) as usize;
                buckets[b].push(row.clone());
            }
            Ok(buckets)
        })?;
        // Gather: destination bucket b receives from sources in order.
        let mut dest: Vec<Vec<Value>> = vec![Vec::new(); p];
        let mut moved_rows = 0u64;
        for src in scattered {
            for (b, rows) in src.into_iter().enumerate() {
                moved_rows += rows.len() as u64;
                dest[b].extend(rows);
            }
        }
        let bytes = estimate_bytes(&dest);
        self.ctx.stats().record_shuffle(moved_rows, bytes);
        Ok(dest)
    }

    /// Re-partitions `(key, value)` rows by key hash.
    pub fn partition_by_key(&self) -> Result<Dataset> {
        self.ctx.next_stage();
        let dest = self.shuffle()?;
        Ok(Dataset::from_parts(self.ctx.clone(), dest))
    }

    /// `reduceByKey`: combines values of equal keys with `f`, using
    /// map-side combining before the shuffle. Rows must be `(key, value)`
    /// pairs; the output has one `(key, combined)` row per distinct key.
    pub fn reduce_by_key<F>(&self, f: F) -> Result<Dataset>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Sync,
    {
        self.ctx.next_stage();
        // Map-side combine.
        let combined = run_stage(self.ctx.workers(), &self.parts, |_, part: &Vec<Value>| {
            let mut acc: HashMap<Value, Value> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in part {
                let (k, v) = key_value(row)?;
                match acc.get_mut(&k) {
                    Some(cur) => *cur = f(cur, &v)?,
                    None => {
                        order.push(k.clone());
                        acc.insert(k, v);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let v = acc.remove(&k).expect("combined");
                    Value::pair(k, v)
                })
                .collect::<Vec<_>>())
        })?;
        let pre = Dataset::from_parts(self.ctx.clone(), combined);
        // Shuffle the partials and reduce each bucket.
        let dest = pre.shuffle()?;
        let parts = run_stage(self.ctx.workers(), &dest, |_, bucket: &Vec<Value>| {
            let mut acc: HashMap<Value, Value> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in bucket {
                let (k, v) = key_value(row)?;
                match acc.get_mut(&k) {
                    Some(cur) => *cur = f(cur, &v)?,
                    None => {
                        order.push(k.clone());
                        acc.insert(k, v);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let v = acc.remove(&k).expect("reduced");
                    Value::pair(k, v)
                })
                .collect::<Vec<_>>())
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// `groupByKey`: shuffles `(key, value)` rows and produces one
    /// `(key, bag-of-values)` row per distinct key.
    pub fn group_by_key(&self) -> Result<Dataset> {
        self.ctx.next_stage();
        let dest = self.shuffle()?;
        let parts = run_stage(self.ctx.workers(), &dest, |_, bucket: &Vec<Value>| {
            let mut groups: HashMap<Value, Vec<Value>> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in bucket {
                let (k, v) = key_value(row)?;
                match groups.get_mut(&k) {
                    Some(g) => g.push(v),
                    None => {
                        order.push(k.clone());
                        groups.insert(k, vec![v]);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let vs = groups.remove(&k).expect("grouped");
                    Value::pair(k, Value::bag(vs))
                })
                .collect::<Vec<_>>())
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// `cogroup`: for each key present on either side, produces
    /// `(key, (left-bag, right-bag))`.
    pub fn cogroup(&self, other: &Dataset) -> Result<Dataset> {
        self.ctx.next_stage();
        let left = self.shuffle()?;
        let right = other.shuffle()?;
        let pairs: Vec<(Vec<Value>, Vec<Value>)> = left.into_iter().zip(right).collect();
        let parts = run_stage(self.ctx.workers(), &pairs, |_, (l, r)| {
            let mut groups: HashMap<Value, (Vec<Value>, Vec<Value>)> = HashMap::new();
            let mut order: Vec<Value> = Vec::new();
            for row in l {
                let (k, v) = key_value(row)?;
                match groups.get_mut(&k) {
                    Some(g) => g.0.push(v),
                    None => {
                        order.push(k.clone());
                        groups.insert(k, (vec![v], Vec::new()));
                    }
                }
            }
            for row in r {
                let (k, v) = key_value(row)?;
                match groups.get_mut(&k) {
                    Some(g) => g.1.push(v),
                    None => {
                        order.push(k.clone());
                        groups.insert(k, (Vec::new(), vec![v]));
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let (lv, rv) = groups.remove(&k).expect("cogrouped");
                    Value::pair(k, Value::pair(Value::bag(lv), Value::bag(rv)))
                })
                .collect::<Vec<_>>())
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// Inner equi-join on `(key, value)` rows: produces
    /// `(key, (left, right))` for every matching pair.
    pub fn join(&self, other: &Dataset) -> Result<Dataset> {
        let co = self.cogroup(other)?;
        co.flat_map(|row| {
            let (k, bags) = key_value(row)?;
            let fields = bags
                .as_tuple()
                .ok_or_else(|| RuntimeError::new("cogroup row shape"))?;
            let (Some(ls), Some(rs)) = (fields[0].as_bag(), fields[1].as_bag()) else {
                return Err(RuntimeError::new("cogroup bags"));
            };
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for l in ls {
                for r in rs {
                    out.push(Value::pair(k.clone(), Value::pair(l.clone(), r.clone())));
                }
            }
            Ok(out)
        })
    }

    /// The array merge `self ⊳ updates` (§3.4), implemented as a cogroup.
    ///
    /// With `combine = None`, colliding keys take the update value
    /// (right-biased, the paper's `⊳`). With `combine = Some(f)`, colliding
    /// keys become `f(old, new)` — the merge form used for incremental
    /// updates `d ⊕= e` (§3.7); duplicate update keys are also combined
    /// with `f` first.
    pub fn merge<F>(&self, updates: &Dataset, combine: Option<F>) -> Result<Dataset>
    where
        F: Fn(&Value, &Value) -> Result<Value> + Sync,
    {
        self.ctx.next_stage();
        let old = self.shuffle()?;
        let new = updates.shuffle()?;
        let pairs: Vec<(Vec<Value>, Vec<Value>)> = old.into_iter().zip(new).collect();
        let combine = &combine;
        let parts = run_stage(self.ctx.workers(), &pairs, |_, (olds, news)| {
            // Old side: arrays have unique keys; keep the last if not.
            let mut slots: HashMap<Value, Value> = HashMap::with_capacity(olds.len());
            let mut order: Vec<Value> = Vec::with_capacity(olds.len());
            for row in olds {
                let (k, v) = key_value(row)?;
                if slots.insert(k.clone(), v).is_none() {
                    order.push(k);
                }
            }
            for row in news {
                let (k, v) = key_value(row)?;
                match slots.get_mut(&k) {
                    Some(cur) => {
                        *cur = match combine {
                            Some(f) => f(cur, &v)?,
                            None => v,
                        };
                    }
                    None => {
                        order.push(k.clone());
                        slots.insert(k, v);
                    }
                }
            }
            Ok(order
                .into_iter()
                .map(|k| {
                    let v = slots.remove(&k).expect("merged");
                    Value::pair(k, v)
                })
                .collect::<Vec<_>>())
        })?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }

    /// Pairwise partition zip (Spark's `zipPartitions`) — requires equal
    /// partition counts; used by the tiled-matrix path (§5), which keeps
    /// operand tilings aligned to avoid shuffles.
    pub fn zip_partitions<F>(&self, other: &Dataset, f: F) -> Result<Dataset>
    where
        F: Fn(&[Value], &[Value]) -> Result<Vec<Value>> + Sync,
    {
        if self.parts.len() != other.parts.len() {
            return Err(RuntimeError::new(
                "zip_partitions requires equal partition counts",
            ));
        }
        self.ctx.next_stage();
        let pairs: Vec<(&Vec<Value>, &Vec<Value>)> =
            self.parts.iter().zip(other.parts.iter()).collect();
        let parts = run_stage(self.ctx.workers(), &pairs, |_, (a, b)| f(a, b))?;
        Ok(Dataset::from_parts(self.ctx.clone(), parts))
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dataset")
            .field("partitions", &self.parts.len())
            .field("rows", &self.count())
            .finish()
    }
}

/// Sampled byte estimate: measure up to 32 rows per partition and scale.
fn estimate_bytes(parts: &[Vec<Value>]) -> u64 {
    let mut total = 0u64;
    for p in parts {
        if p.is_empty() {
            continue;
        }
        let sample_n = p.len().min(32);
        let sample: u64 = slice_size(&p[..sample_n]) as u64;
        total += sample * p.len() as u64 / sample_n as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_runtime::BinOp;

    fn ctx() -> Context {
        Context::new(4, 8)
    }

    fn pairs(ctx: &Context, entries: &[(i64, i64)]) -> Dataset {
        ctx.from_vec(
            entries
                .iter()
                .map(|&(k, v)| Value::pair(Value::Long(k), Value::Long(v)))
                .collect(),
        )
    }

    #[test]
    fn map_filter_flat_map() {
        let ctx = ctx();
        let d = ctx.range(1, 100);
        let doubled = d.map(|v| BinOp::Mul.apply(v, &Value::Long(2))).unwrap();
        assert_eq!(doubled.count(), 100);
        let evens = d
            .filter(|v| Ok(v.as_long().unwrap() % 2 == 0))
            .unwrap();
        assert_eq!(evens.count(), 50);
        let dup = d.flat_map(|v| Ok(vec![v.clone(), v.clone()])).unwrap();
        assert_eq!(dup.count(), 200);
    }

    #[test]
    fn range_covers_inclusive_bounds() {
        let ctx = ctx();
        let d = ctx.range(5, 9);
        assert_eq!(
            d.collect_sorted(),
            (5..=9).map(Value::Long).collect::<Vec<_>>()
        );
        assert_eq!(ctx.range(3, 2).count(), 0, "empty range");
    }

    #[test]
    fn reduce_sums() {
        let ctx = ctx();
        let d = ctx.range(1, 1000);
        let sum = d.reduce(|a, b| BinOp::Add.apply(a, b)).unwrap().unwrap();
        assert_eq!(sum, Value::Long(500500));
        assert_eq!(ctx.empty().reduce(|a, b| BinOp::Add.apply(a, b)).unwrap(), None);
    }

    #[test]
    fn reduce_by_key_combines_across_partitions() {
        let ctx = ctx();
        let entries: Vec<(i64, i64)> = (0..1000).map(|i| (i % 10, 1)).collect();
        let d = pairs(&ctx, &entries);
        let before = ctx.stats().snapshot();
        let r = d.reduce_by_key(|a, b| BinOp::Add.apply(a, b)).unwrap();
        let after = ctx.stats().snapshot().since(&before);
        let mut rows = r.collect_sorted();
        rows.sort();
        assert_eq!(rows.len(), 10);
        for row in rows {
            let (_, v) = key_value(&row).unwrap();
            assert_eq!(v, Value::Long(100));
        }
        // Map-side combining means at most partitions × keys rows shuffle.
        assert!(
            after.shuffled_records <= (8 * 10) as u64,
            "combiner limits shuffle: {after:?}"
        );
    }

    #[test]
    fn group_by_key_collects_bags() {
        let ctx = ctx();
        let d = pairs(&ctx, &[(1, 10), (2, 20), (1, 30)]);
        let g = d.group_by_key().unwrap();
        let rows = g.collect_sorted();
        assert_eq!(rows.len(), 2);
        let (k, bag) = key_value(&rows[0]).unwrap();
        assert_eq!(k, Value::Long(1));
        let mut items = bag.as_bag().unwrap().to_vec();
        items.sort();
        assert_eq!(items, vec![Value::Long(10), Value::Long(30)]);
    }

    #[test]
    fn join_matches_keys() {
        let ctx = ctx();
        let l = pairs(&ctx, &[(1, 10), (2, 20), (3, 30)]);
        let r = pairs(&ctx, &[(2, 200), (3, 300), (4, 400)]);
        let j = l.join(&r).unwrap();
        let mut rows = j.collect_sorted();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                Value::pair(Value::Long(2), Value::pair(Value::Long(20), Value::Long(200))),
                Value::pair(Value::Long(3), Value::pair(Value::Long(30), Value::Long(300))),
            ]
        );
    }

    #[test]
    fn join_duplicates_produce_cross_products() {
        let ctx = ctx();
        let l = pairs(&ctx, &[(1, 10), (1, 11)]);
        let r = pairs(&ctx, &[(1, 100), (1, 101)]);
        assert_eq!(l.join(&r).unwrap().count(), 4);
    }

    #[test]
    fn merge_replaces_and_combines() {
        let ctx = ctx();
        let old = pairs(&ctx, &[(1, 10), (2, 20)]);
        let upd = pairs(&ctx, &[(2, 5), (3, 30)]);
        let replaced = old
            .merge(&upd, None::<fn(&Value, &Value) -> Result<Value>>)
            .unwrap();
        assert_eq!(
            replaced.collect_sorted(),
            vec![
                Value::pair(Value::Long(1), Value::Long(10)),
                Value::pair(Value::Long(2), Value::Long(5)),
                Value::pair(Value::Long(3), Value::Long(30)),
            ]
        );
        let combined = old
            .merge(&upd, Some(|a: &Value, b: &Value| BinOp::Add.apply(a, b)))
            .unwrap();
        assert_eq!(
            combined.collect_sorted(),
            vec![
                Value::pair(Value::Long(1), Value::Long(10)),
                Value::pair(Value::Long(2), Value::Long(25)),
                Value::pair(Value::Long(3), Value::Long(30)),
            ]
        );
    }

    #[test]
    fn cogroup_covers_one_sided_keys() {
        let ctx = ctx();
        let l = pairs(&ctx, &[(1, 10)]);
        let r = pairs(&ctx, &[(2, 20)]);
        let co = l.cogroup(&r).unwrap();
        let rows = co.collect_sorted();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn union_keeps_duplicates() {
        let ctx = ctx();
        let a = pairs(&ctx, &[(1, 1)]);
        let b = pairs(&ctx, &[(1, 1)]);
        assert_eq!(a.union(&b).count(), 2);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let ctx = ctx();
        let d = ctx.range(0, 100);
        let err = d.map(|v| {
            if v.as_long() == Some(50) {
                Err(RuntimeError::new("boom"))
            } else {
                Ok(v.clone())
            }
        });
        assert!(err.is_err());
    }

    #[test]
    fn zip_partitions_pairs_up() {
        let ctx = Context::new(2, 4);
        let a = ctx.from_vec((0..8).map(Value::Long).collect());
        let b = ctx.from_vec((100..108).map(Value::Long).collect());
        let z = a
            .zip_partitions(&b, |xs, ys| {
                xs
                    .iter()
                    .zip(ys)
                    .map(|(x, y)| BinOp::Add.apply(x, y))
                    .collect::<Result<Vec<_>>>()
            })
            .unwrap();
        assert_eq!(z.count(), 8);
        let sum = z.reduce(|a, b| BinOp::Add.apply(a, b)).unwrap().unwrap();
        assert_eq!(sum, Value::Long((0..8).sum::<i64>() + (100..108).sum::<i64>()));
    }

    #[test]
    fn broadcast_counts_in_stats() {
        let ctx = ctx();
        let d = ctx.range(0, 9);
        let before = ctx.stats().snapshot();
        let b = d.broadcast();
        assert_eq!(b.len(), 10);
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(after.broadcasts, 1);
        assert_eq!(after.broadcast_records, 10);
    }

    #[test]
    fn shuffle_determinism() {
        let ctx = ctx();
        let entries: Vec<(i64, i64)> = (0..500).map(|i| (i % 37, i)).collect();
        let d = pairs(&ctx, &entries);
        let a = d.group_by_key().unwrap().collect();
        let b = d.group_by_key().unwrap().collect();
        assert_eq!(a, b, "repeated shuffles are deterministic");
    }
}
