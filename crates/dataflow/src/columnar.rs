//! Columnar vectorized execution: typed column chunks, the row-expression
//! IR that makes fused steps transparent to the engine, and the stage
//! driver that runs eligible chains batch-at-a-time over per-column inner
//! loops.
//!
//! Every other backend moves rows as boxed [`Value`] enums, one enum match
//! per operator per tuple, even inside fused stages. This module
//! generalizes the §5 tile runtime's batch layout to arbitrary datasets:
//!
//! * **[`RowExpr`]** — a small expression IR over whole rows. Operators
//!   built from it (via `Dataset::map_expr` / `Dataset::filter_expr`, or
//!   the exec crate's lowering of comprehension steps) carry the
//!   expression *alongside* the compiled closure, so the engine can see
//!   that a step is arithmetic/comparison/projection instead of an opaque
//!   `Fn` pointer. The closure and the expression are derived from the
//!   same source, so the row path and the columnar path agree by
//!   construction.
//! * **[`VCol`]** — typed column chunks: `Vec<i64>` / `Vec<f64>` /
//!   `Vec<bool>` lanes, dictionary-encoded strings, struct-of-arrays
//!   tuples, broadcast constants, and an opaque `Value` column as the
//!   escape hatch. A filter's boolean lane acts as the validity mask the
//!   surviving columns are compacted through.
//! * **[`drive_columnar`]** — the stage compiler/driver: each tile of up
//!   to `batch` rows is decomposed into columns once, every fused step is
//!   evaluated as per-column inner loops (auto-vectorizable `zip`/`map`
//!   over primitive lanes; anything type-mixed falls back to per-element
//!   [`BinOp::apply`] so semantics agree by construction), and the
//!   surviving rows are reassembled once at the end of the chain.
//!
//! ## Error identity
//!
//! Lane loops bail on the first faulting lane element, which is generally
//! *not* the canonical first error of tuple-at-a-time execution (a later
//! column of an earlier row may fail first, or the consumer's sink may
//! reject an earlier row). Exactly like `drive_batch`, a failing tile is
//! therefore **replayed tuple-at-a-time into the real sink**: nothing from
//! the failed tile has been emitted yet, so the replay reproduces the
//! byte-identical first error — statement tag included — that
//! `LocalExecutor` would have raised. If the replay sails through (a
//! non-deterministic operator), the batched error is kept.
//!
//! Stages containing a step without an expression (an opaque UDF) never
//! enter the columnar path at all: `DriveMode::Columnar` demotes them to
//! tuple-at-a-time per stage, records
//! [`StatsSnapshot::row_fallback_stages`](crate::StatsSnapshot), and the
//! plan trace notes `layout: row (…)` naming the opaque step.

use std::collections::HashMap;
use std::sync::Arc;

use diablo_runtime::{BinOp, Func, RuntimeError, UnOp, Value};

use crate::plan::{self, drive, ChunkPolicy, DriveMode, Result, Step, StepOp};
use crate::stats::Stats;
use crate::{Capabilities, Context, Executor, PartitionTask, Parts, PhysicalPlan};

/// A transparent row expression: the part of a `map`/`filter` step the
/// engine can see through and lower to per-column loops.
///
/// Evaluation semantics are exactly those of the runtime operators
/// ([`BinOp::apply`], [`UnOp::apply`], [`Func::apply`]): wrapping 64-bit
/// integer arithmetic, checked long division, `total_cmp` double
/// comparisons. A closure derived from a `RowExpr` (the row path) and the
/// vectorized interpretation (the columnar path) therefore return the same
/// rows and raise the same errors.
#[derive(Clone, Debug)]
pub enum RowExpr {
    /// The whole input row.
    Input,
    /// Field `i` of the input row's tuple layout.
    Col(usize),
    /// A literal.
    Const(Value),
    /// A binary runtime operator over two sub-expressions.
    Bin(BinOp, Box<RowExpr>, Box<RowExpr>),
    /// A unary runtime operator.
    Un(UnOp, Box<RowExpr>),
    /// A builtin scalar function call.
    Call(Func, Vec<RowExpr>),
    /// A fresh tuple from sub-expressions.
    Tuple(Vec<RowExpr>),
    /// Record-field / tuple-position access (`_1`, `_2`, … or a record
    /// field name), with [`Value::field`] semantics.
    Field(Box<RowExpr>, String),
}

fn narrow_row() -> RuntimeError {
    RuntimeError::new("row is narrower than its layout")
}

impl RowExpr {
    /// Evaluates the expression against one row — the row path. This is
    /// what `Dataset::map_expr` / `filter_expr` closures call, and what a
    /// failed tile's replay runs.
    pub fn eval(&self, row: &Value) -> Result<Value> {
        match self {
            RowExpr::Input => Ok(row.clone()),
            RowExpr::Col(i) => row
                .as_tuple()
                .and_then(|t| t.get(*i))
                .cloned()
                .ok_or_else(narrow_row),
            RowExpr::Const(v) => Ok(v.clone()),
            RowExpr::Bin(op, a, b) => op.apply(&a.eval(row)?, &b.eval(row)?),
            RowExpr::Un(op, e) => op.apply(&e.eval(row)?),
            RowExpr::Call(f, args) => {
                let vs = args
                    .iter()
                    .map(|a| a.eval(row))
                    .collect::<Result<Vec<Value>>>()?;
                f.apply(&vs)
            }
            RowExpr::Tuple(es) => Ok(Value::tuple(
                es.iter()
                    .map(|e| e.eval(row))
                    .collect::<Result<Vec<Value>>>()?,
            )),
            RowExpr::Field(e, name) => {
                let v = e.eval(row)?;
                match v.field(name) {
                    Some(f) => Ok(f.clone()),
                    None => Err(RuntimeError::new(format!(
                        "value {v} has no field `{name}`"
                    ))),
                }
            }
        }
    }
}

/// True when every fused step of the chain carries a [`RowExpr`] — the
/// stage can run through the columnar driver.
pub(crate) fn eligible(steps: &[Step]) -> bool {
    !steps.is_empty() && steps.iter().all(|s| s.expr.is_some())
}

/// A typed column chunk: one tile's worth of one column.
#[derive(Clone, Debug)]
enum VCol {
    /// 64-bit integer lane.
    Long(Arc<Vec<i64>>),
    /// 64-bit float lane.
    Double(Arc<Vec<f64>>),
    /// Boolean lane (also the validity mask a filter compacts through).
    Bool(Arc<Vec<bool>>),
    /// Dictionary-encoded strings: per-row ids into a deduplicated
    /// dictionary, so equality over a shared dictionary is an id compare.
    Str(Arc<Vec<u32>>, Arc<Vec<Arc<str>>>),
    /// Struct-of-arrays tuple: one child column per field.
    Tuple(Arc<Vec<VCol>>),
    /// A broadcast constant (every row holds this value).
    Const(Value),
    /// Opaque rows — no typed layout applies; per-element semantics.
    Val(Arc<Vec<Value>>),
}

/// Columnarizes a borrowed tile. Typed lanes when the tile is homogeneous;
/// the opaque column otherwise.
fn decompose(rows: &[Value]) -> VCol {
    match try_typed(rows) {
        Some(col) => col,
        None => VCol::Val(Arc::new(rows.to_vec())),
    }
}

/// Columnarizes an owned tile (e.g. a fallback step's per-element output),
/// reusing the allocation when no typed layout applies.
fn decompose_owned(rows: Vec<Value>) -> VCol {
    match try_typed(&rows) {
        Some(col) => col,
        None => VCol::Val(Arc::new(rows)),
    }
}

fn try_typed(rows: &[Value]) -> Option<VCol> {
    match rows.first()? {
        Value::Long(_) => {
            let mut lane = Vec::with_capacity(rows.len());
            for v in rows {
                match v {
                    Value::Long(n) => lane.push(*n),
                    _ => return None,
                }
            }
            Some(VCol::Long(Arc::new(lane)))
        }
        Value::Double(_) => {
            let mut lane = Vec::with_capacity(rows.len());
            for v in rows {
                match v {
                    Value::Double(x) => lane.push(*x),
                    _ => return None,
                }
            }
            Some(VCol::Double(Arc::new(lane)))
        }
        Value::Bool(_) => {
            let mut lane = Vec::with_capacity(rows.len());
            for v in rows {
                match v {
                    Value::Bool(b) => lane.push(*b),
                    _ => return None,
                }
            }
            Some(VCol::Bool(Arc::new(lane)))
        }
        Value::Str(_) => {
            let mut ids = Vec::with_capacity(rows.len());
            let mut dict: Vec<Arc<str>> = Vec::new();
            let mut seen: HashMap<Arc<str>, u32> = HashMap::new();
            for v in rows {
                match v {
                    Value::Str(s) => {
                        let id = *seen.entry(s.clone()).or_insert_with(|| {
                            dict.push(s.clone());
                            (dict.len() - 1) as u32
                        });
                        ids.push(id);
                    }
                    _ => return None,
                }
            }
            Some(VCol::Str(Arc::new(ids), Arc::new(dict)))
        }
        Value::Tuple(first) => {
            let width = first.len();
            if !rows
                .iter()
                .all(|v| matches!(v, Value::Tuple(fs) if fs.len() == width))
            {
                return None;
            }
            let cols = (0..width)
                .map(|c| {
                    let field: Vec<Value> = rows
                        .iter()
                        .map(|v| v.as_tuple().expect("checked tuple")[c].clone())
                        .collect();
                    decompose_owned(field)
                })
                .collect();
            Some(VCol::Tuple(Arc::new(cols)))
        }
        _ => None,
    }
}

impl VCol {
    /// Reassembles row `i` of this column as a boxed value.
    fn get(&self, i: usize) -> Value {
        match self {
            VCol::Long(v) => Value::Long(v[i]),
            VCol::Double(v) => Value::Double(v[i]),
            VCol::Bool(v) => Value::Bool(v[i]),
            VCol::Str(ids, dict) => Value::Str(dict[ids[i] as usize].clone()),
            VCol::Tuple(cols) => Value::tuple(cols.iter().map(|c| c.get(i)).collect()),
            VCol::Const(v) => v.clone(),
            VCol::Val(rows) => rows[i].clone(),
        }
    }

    /// Keeps the rows whose mask bit is set — a filter's compaction.
    fn compact(&self, mask: &[bool]) -> VCol {
        fn keep<T: Copy>(lane: &[T], mask: &[bool]) -> Vec<T> {
            lane.iter()
                .zip(mask)
                .filter(|&(_, &m)| m)
                .map(|(&x, _)| x)
                .collect()
        }
        match self {
            VCol::Long(v) => VCol::Long(Arc::new(keep(v, mask))),
            VCol::Double(v) => VCol::Double(Arc::new(keep(v, mask))),
            VCol::Bool(v) => VCol::Bool(Arc::new(keep(v, mask))),
            VCol::Str(ids, dict) => VCol::Str(Arc::new(keep(ids, mask)), dict.clone()),
            VCol::Tuple(cols) => {
                VCol::Tuple(Arc::new(cols.iter().map(|c| c.compact(mask)).collect()))
            }
            VCol::Const(v) => VCol::Const(v.clone()),
            VCol::Val(rows) => VCol::Val(Arc::new(
                rows.iter()
                    .zip(mask)
                    .filter(|&(_, &m)| m)
                    .map(|(v, _)| v.clone())
                    .collect(),
            )),
        }
    }
}

/// A primitive lane view with constant broadcast.
enum Lane<'a, T: Copy> {
    V(&'a [T]),
    C(T),
}

fn zip<T: Copy, R: Copy>(
    a: &Lane<'_, T>,
    b: &Lane<'_, T>,
    len: usize,
    f: impl Fn(T, T) -> R,
) -> Vec<R> {
    match (a, b) {
        (Lane::V(x), Lane::V(y)) => x.iter().zip(y.iter()).map(|(&p, &q)| f(p, q)).collect(),
        (Lane::V(x), Lane::C(q)) => x.iter().map(|&p| f(p, *q)).collect(),
        (Lane::C(p), Lane::V(y)) => y.iter().map(|&q| f(*p, q)).collect(),
        (Lane::C(p), Lane::C(q)) => vec![f(*p, *q); len],
    }
}

fn try_zip<T: Copy, R: Copy>(
    a: &Lane<'_, T>,
    b: &Lane<'_, T>,
    len: usize,
    f: impl Fn(T, T) -> Result<R>,
) -> Result<Vec<R>> {
    match (a, b) {
        (Lane::V(x), Lane::V(y)) => x.iter().zip(y.iter()).map(|(&p, &q)| f(p, q)).collect(),
        (Lane::V(x), Lane::C(q)) => x.iter().map(|&p| f(p, *q)).collect(),
        (Lane::C(p), Lane::V(y)) => y.iter().map(|&q| f(*p, q)).collect(),
        (Lane::C(p), Lane::C(q)) => Ok(vec![f(*p, *q)?; len]),
    }
}

fn lane_i64(col: &VCol) -> Option<Lane<'_, i64>> {
    match col {
        VCol::Long(v) => Some(Lane::V(v)),
        VCol::Const(Value::Long(n)) => Some(Lane::C(*n)),
        _ => None,
    }
}

fn lane_f64(col: &VCol) -> Option<Lane<'_, f64>> {
    match col {
        VCol::Double(v) => Some(Lane::V(v)),
        VCol::Const(Value::Double(x)) => Some(Lane::C(*x)),
        _ => None,
    }
}

fn lane_bool(col: &VCol) -> Option<Lane<'_, bool>> {
    match col {
        VCol::Bool(v) => Some(Lane::V(v)),
        VCol::Const(Value::Bool(b)) => Some(Lane::C(*b)),
        _ => None,
    }
}

fn is_numeric_col(col: &VCol) -> bool {
    matches!(
        col,
        VCol::Long(_) | VCol::Double(_) | VCol::Const(Value::Long(_) | Value::Double(_))
    )
}

/// Promotes a numeric column to a double lane — the `both_doubles` /
/// `Value::cmp` promotion the runtime applies to mixed long/double
/// operands.
fn promote_f64(col: &VCol) -> Option<VCol> {
    match col {
        VCol::Double(_) => Some(col.clone()),
        VCol::Long(v) => Some(VCol::Double(Arc::new(
            v.iter().map(|&n| n as f64).collect(),
        ))),
        VCol::Const(Value::Double(_)) => Some(col.clone()),
        VCol::Const(Value::Long(n)) => Some(VCol::Const(Value::Double(*n as f64))),
        _ => None,
    }
}

fn long_col(lane: Vec<i64>) -> VCol {
    VCol::Long(Arc::new(lane))
}
fn double_col(lane: Vec<f64>) -> VCol {
    VCol::Double(Arc::new(lane))
}
fn bool_col(lane: Vec<bool>) -> VCol {
    VCol::Bool(Arc::new(lane))
}

/// Per-element fallback: exact runtime semantics for anything the lane
/// loops do not specialize.
fn fallback_bin(op: BinOp, a: &VCol, b: &VCol, len: usize) -> Result<VCol> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        out.push(op.apply(&a.get(i), &b.get(i))?);
    }
    Ok(decompose_owned(out))
}

/// Vectorized binary operator over two columns.
fn vec_bin(op: BinOp, a: &VCol, b: &VCol, len: usize) -> Result<VCol> {
    use std::cmp::Ordering;
    use BinOp::*;
    if let (VCol::Const(x), VCol::Const(y)) = (a, b) {
        // Fold constants once instead of per row.
        return Ok(VCol::Const(op.apply(x, y)?));
    }
    if let (Some(x), Some(y)) = (lane_i64(a), lane_i64(b)) {
        return match op {
            Add => Ok(long_col(zip(&x, &y, len, |p, q| p.wrapping_add(q)))),
            Sub => Ok(long_col(zip(&x, &y, len, |p, q| p.wrapping_sub(q)))),
            Mul => Ok(long_col(zip(&x, &y, len, |p, q| p.wrapping_mul(q)))),
            Div => Ok(long_col(try_zip(&x, &y, len, |p, q| {
                if q == 0 {
                    Err(RuntimeError::new("division by zero"))
                } else {
                    Ok(p / q)
                }
            })?)),
            Mod => Ok(long_col(try_zip(&x, &y, len, |p, q| {
                if q == 0 {
                    Err(RuntimeError::new("modulo by zero"))
                } else {
                    Ok(p % q)
                }
            })?)),
            Eq => Ok(bool_col(zip(&x, &y, len, |p, q| p == q))),
            Ne => Ok(bool_col(zip(&x, &y, len, |p, q| p != q))),
            Lt => Ok(bool_col(zip(&x, &y, len, |p, q| p < q))),
            Le => Ok(bool_col(zip(&x, &y, len, |p, q| p <= q))),
            Gt => Ok(bool_col(zip(&x, &y, len, |p, q| p > q))),
            Ge => Ok(bool_col(zip(&x, &y, len, |p, q| p >= q))),
            Min => Ok(long_col(zip(&x, &y, len, |p, q| p.min(q)))),
            Max => Ok(long_col(zip(&x, &y, len, |p, q| p.max(q)))),
            And | Or | ArgMin => fallback_bin(op, a, b, len),
        };
    }
    if let (Some(x), Some(y)) = (lane_bool(a), lane_bool(b)) {
        return match op {
            And => Ok(bool_col(zip(&x, &y, len, |p, q| p && q))),
            Or => Ok(bool_col(zip(&x, &y, len, |p, q| p || q))),
            Eq => Ok(bool_col(zip(&x, &y, len, |p, q| p == q))),
            Ne => Ok(bool_col(zip(&x, &y, len, |p, q| p != q))),
            _ => fallback_bin(op, a, b, len),
        };
    }
    if is_numeric_col(a) && is_numeric_col(b) {
        // At least one side is a double (the all-long case matched above),
        // so arithmetic promotes to doubles and comparisons use the
        // promoted total order — exactly `both_doubles` / `Value::cmp`.
        let strict = lane_f64(a).is_some() && lane_f64(b).is_some();
        let (pa, pb) = (
            promote_f64(a).expect("numeric"),
            promote_f64(b).expect("numeric"),
        );
        let (x, y) = (
            lane_f64(&pa).expect("promoted"),
            lane_f64(&pb).expect("promoted"),
        );
        return match op {
            Add => Ok(double_col(zip(&x, &y, len, |p, q| p + q))),
            Sub => Ok(double_col(zip(&x, &y, len, |p, q| p - q))),
            Mul => Ok(double_col(zip(&x, &y, len, |p, q| p * q))),
            Div => Ok(double_col(zip(&x, &y, len, |p, q| p / q))),
            Mod => Ok(double_col(zip(&x, &y, len, |p, q| p % q))),
            Eq => Ok(bool_col(zip(&x, &y, len, |p, q| {
                p.total_cmp(&q) == Ordering::Equal
            }))),
            Ne => Ok(bool_col(zip(&x, &y, len, |p, q| {
                p.total_cmp(&q) != Ordering::Equal
            }))),
            Lt => Ok(bool_col(zip(&x, &y, len, |p, q| {
                p.total_cmp(&q) == Ordering::Less
            }))),
            Le => Ok(bool_col(zip(&x, &y, len, |p, q| {
                p.total_cmp(&q) != Ordering::Greater
            }))),
            Gt => Ok(bool_col(zip(&x, &y, len, |p, q| {
                p.total_cmp(&q) == Ordering::Greater
            }))),
            Ge => Ok(bool_col(zip(&x, &y, len, |p, q| {
                p.total_cmp(&q) != Ordering::Less
            }))),
            // `min`/`max` keep the ORIGINAL operand (long or double), so
            // only the both-doubles case is lane-safe.
            Min if strict => Ok(double_col(zip(&x, &y, len, |p, q| {
                if p.total_cmp(&q) != Ordering::Greater {
                    p
                } else {
                    q
                }
            }))),
            Max if strict => Ok(double_col(zip(&x, &y, len, |p, q| {
                if p.total_cmp(&q) != Ordering::Less {
                    p
                } else {
                    q
                }
            }))),
            _ => fallback_bin(op, a, b, len),
        };
    }
    if let (VCol::Str(xi, xd), VCol::Str(yi, yd)) = (a, b) {
        // Within one dictionary ids are unique per string, so equality
        // over a shared dictionary is an id compare.
        if Arc::ptr_eq(xd, yd) && matches!(op, Eq | Ne) {
            let (x, y) = (Lane::V(xi.as_slice()), Lane::V(yi.as_slice()));
            return match op {
                Eq => Ok(bool_col(zip(&x, &y, len, |p: u32, q: u32| p == q))),
                _ => Ok(bool_col(zip(&x, &y, len, |p: u32, q: u32| p != q))),
            };
        }
    }
    fallback_bin(op, a, b, len)
}

/// Vectorized unary operator.
fn vec_un(op: UnOp, col: &VCol, len: usize) -> Result<VCol> {
    match (op, col) {
        (_, VCol::Const(v)) => Ok(VCol::Const(op.apply(v)?)),
        (UnOp::Neg, VCol::Long(v)) => Ok(long_col(v.iter().map(|&n| -n).collect())),
        (UnOp::Neg, VCol::Double(v)) => Ok(double_col(v.iter().map(|&x| -x).collect())),
        (UnOp::Not, VCol::Bool(v)) => Ok(bool_col(v.iter().map(|&b| !b).collect())),
        _ => {
            let mut out = Vec::with_capacity(len);
            for i in 0..len {
                out.push(op.apply(&col.get(i))?);
            }
            Ok(decompose_owned(out))
        }
    }
}

/// Tuple-position / record-field projection over a column.
fn project(col: &VCol, i: usize, len: usize) -> Result<VCol> {
    match col {
        VCol::Tuple(cols) => cols.get(i).cloned().ok_or_else(narrow_row),
        VCol::Const(v) => v
            .as_tuple()
            .and_then(|t| t.get(i))
            .cloned()
            .map(VCol::Const)
            .ok_or_else(narrow_row),
        VCol::Val(rows) => {
            let mut out = Vec::with_capacity(len);
            for v in rows.iter() {
                out.push(
                    v.as_tuple()
                        .and_then(|t| t.get(i))
                        .cloned()
                        .ok_or_else(narrow_row)?,
                );
            }
            Ok(decompose_owned(out))
        }
        _ => Err(narrow_row()),
    }
}

fn project_field(col: &VCol, name: &str, len: usize) -> Result<VCol> {
    if let VCol::Tuple(cols) = col {
        // `_k` on a struct-of-arrays tuple is just the k-th child column.
        if let Some(k) = name
            .strip_prefix('_')
            .and_then(|s| s.parse::<usize>().ok())
            .and_then(|k| k.checked_sub(1))
        {
            if let Some(c) = cols.get(k) {
                return Ok(c.clone());
            }
        }
    }
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let v = col.get(i);
        match v.field(name) {
            Some(f) => out.push(f.clone()),
            None => {
                return Err(RuntimeError::new(format!(
                    "value {v} has no field `{name}`"
                )))
            }
        }
    }
    Ok(decompose_owned(out))
}

/// Vectorized expression evaluation over the tile's current columns.
fn vec_eval(expr: &RowExpr, input: &VCol, len: usize) -> Result<VCol> {
    match expr {
        RowExpr::Input => Ok(input.clone()),
        RowExpr::Col(i) => project(input, *i, len),
        RowExpr::Const(v) => Ok(VCol::Const(v.clone())),
        RowExpr::Bin(op, a, b) => {
            let a = vec_eval(a, input, len)?;
            let b = vec_eval(b, input, len)?;
            vec_bin(*op, &a, &b, len)
        }
        RowExpr::Un(op, e) => {
            let col = vec_eval(e, input, len)?;
            vec_un(*op, &col, len)
        }
        RowExpr::Call(f, args) => {
            let cols = args
                .iter()
                .map(|e| vec_eval(e, input, len))
                .collect::<Result<Vec<VCol>>>()?;
            let mut out = Vec::with_capacity(len);
            let mut buf: Vec<Value> = Vec::with_capacity(cols.len());
            for i in 0..len {
                buf.clear();
                buf.extend(cols.iter().map(|c| c.get(i)));
                out.push(f.apply(&buf)?);
            }
            Ok(decompose_owned(out))
        }
        RowExpr::Tuple(es) => {
            let cols = es
                .iter()
                .map(|e| vec_eval(e, input, len))
                .collect::<Result<Vec<VCol>>>()?;
            Ok(VCol::Tuple(Arc::new(cols)))
        }
        RowExpr::Field(e, name) => {
            let col = vec_eval(e, input, len)?;
            project_field(&col, name, len)
        }
    }
}

/// A filter result as a validity mask.
fn mask_of(col: &VCol, len: usize) -> Result<Vec<bool>> {
    match col {
        VCol::Bool(v) => Ok(v.as_ref().clone()),
        VCol::Const(Value::Bool(b)) => Ok(vec![*b; len]),
        _ => {
            let mut mask = Vec::with_capacity(len);
            for i in 0..len {
                match col.get(i).as_bool() {
                    Some(b) => mask.push(b),
                    None => return Err(RuntimeError::new("condition must be boolean")),
                }
            }
            Ok(mask)
        }
    }
}

/// Runs one tile through the whole fused chain in columnar form:
/// decompose once, per-column loops per step, reassemble once.
fn run_tile(rows: &[Value], steps: &[Step]) -> Result<Vec<Value>> {
    let mut col = decompose(rows);
    let mut len = rows.len();
    for s in steps {
        let expr = s
            .expr
            .as_ref()
            .ok_or_else(|| RuntimeError::new("opaque step in a columnar stage"))?;
        match &s.op {
            StepOp::Map(_) => {
                col = vec_eval(expr, &col, len).map_err(|e| s.tag_err(e))?;
            }
            StepOp::Filter(_) => {
                let mask = vec_eval(expr, &col, len)
                    .and_then(|c| mask_of(&c, len))
                    .map_err(|e| s.tag_err(e))?;
                len = mask.iter().filter(|&&m| m).count();
                col = col.compact(&mask);
            }
            // flat_map carries no expression, so eligible() excluded it.
            StepOp::FlatMap(_) => return Err(RuntimeError::new("opaque step in a columnar stage")),
        }
        if len == 0 {
            return Ok(Vec::new());
        }
    }
    Ok((0..len).map(|i| col.get(i)).collect())
}

/// Drives a run of source rows through an eligible chain **batch-at-a-time
/// in columnar form**. Output rows and their order are identical to
/// [`drive`]; a failing tile is replayed tuple-at-a-time into the real
/// sink so the first error and its statement tag are byte-identical too
/// (see the module docs and `drive_batch`).
pub(crate) fn drive_columnar(
    rows: &[Value],
    steps: &[Step],
    batch: usize,
    stats: &Stats,
    sink: &mut dyn FnMut(Value) -> Result<()>,
) -> Result<()> {
    debug_assert!(batch > 0);
    for tile in rows.chunks(batch.max(1)) {
        match run_tile(tile, steps) {
            Ok(out) => {
                stats.record_vectorized_batch();
                for v in out {
                    sink(v)?;
                }
            }
            Err(batched) => {
                // Replay this tile tuple-at-a-time into the REAL sink:
                // nothing from a failed tile has been sunk yet, and the
                // canonical first error may come from an earlier row or
                // from the consumer, not from the lane that failed first.
                for row in tile {
                    drive(row, steps, sink)?;
                }
                // Non-deterministic operator: the replay sailed through,
                // so keep the batched error.
                return Err(batched);
            }
        }
    }
    Ok(())
}

/// The columnar backend: identical plans, stage structure, shuffles, and
/// results, but fused narrow chains whose steps are all transparent
/// ([`RowExpr`]-described) run batch-at-a-time over typed column chunks.
/// Stages with an opaque step fall back to tuple-at-a-time **per stage**
/// (counted in [`StatsSnapshot::row_fallback_stages`](crate::StatsSnapshot)
/// and noted in the plan trace as `layout: row (…)`).
///
/// The default batch width is 4096 rows; tune with the
/// `DIABLO_COLUMNAR_BATCH` environment variable.
#[derive(Debug, Clone, Copy)]
pub struct ColumnarExecutor {
    batch: usize,
}

impl ColumnarExecutor {
    /// Default column-chunk width in rows.
    pub const DEFAULT_BATCH: usize = 4096;

    /// Creates a columnar executor with the given batch width.
    pub fn new(batch: usize) -> ColumnarExecutor {
        assert!(batch > 0, "columnar batch must be positive");
        ColumnarExecutor { batch }
    }

    /// Creates a columnar executor sized from `DIABLO_COLUMNAR_BATCH`
    /// (default [`ColumnarExecutor::DEFAULT_BATCH`]).
    pub fn from_env() -> ColumnarExecutor {
        let batch = std::env::var("DIABLO_COLUMNAR_BATCH")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&b| b > 0)
            .unwrap_or(Self::DEFAULT_BATCH);
        ColumnarExecutor::new(batch)
    }

    /// The configured batch width.
    pub fn batch(&self) -> usize {
        self.batch
    }

    fn mode(&self, ctx: &Context) -> DriveMode {
        DriveMode::Columnar(self.batch, ctx.stats_arc())
    }
}

impl Default for ColumnarExecutor {
    fn default() -> ColumnarExecutor {
        ColumnarExecutor::new(Self::DEFAULT_BATCH)
    }
}

impl Executor for ColumnarExecutor {
    fn name(&self) -> &'static str {
        "columnar"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            vectorized: true,
            fused_shuffle_read: true,
            union_in_place: true,
            spilling_exchange: false,
            adaptive_chunking: false,
            ordered_exchange: true,
            morsel_scheduling: false,
        }
    }

    fn materialize(&self, ctx: &Context, plan: &PhysicalPlan) -> Result<Parts> {
        plan::materialize(ctx, &plan.op, &self.mode(ctx), ChunkPolicy::Fixed)
    }

    fn consume(
        &self,
        ctx: &Context,
        plan: &PhysicalPlan,
        label: &str,
        task: &PartitionTask<'_>,
    ) -> Result<Vec<Vec<Vec<Value>>>> {
        plan::consume(
            ctx,
            &plan.op,
            label,
            &self.mode(ctx),
            ChunkPolicy::Fixed,
            task,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn longs(ns: &[i64]) -> Vec<Value> {
        ns.iter().map(|&n| Value::Long(n)).collect()
    }

    fn step_map(expr: RowExpr, tag: Option<&str>) -> Step {
        let e = Arc::new(expr);
        let f = {
            let e = e.clone();
            move |row: &Value| e.eval(row)
        };
        Step {
            op: StepOp::Map(Arc::new(f)),
            tag: tag.map(Arc::from),
            expr: Some(e),
        }
    }

    fn step_filter(expr: RowExpr, tag: Option<&str>) -> Step {
        let e = Arc::new(expr);
        let f = {
            let e = e.clone();
            move |row: &Value| match e.eval(row)? {
                Value::Bool(b) => Ok(b),
                _ => Err(RuntimeError::new("condition must be boolean")),
            }
        };
        Step {
            op: StepOp::Filter(Arc::new(f)),
            tag: tag.map(Arc::from),
            expr: Some(e),
        }
    }

    fn run_both(
        rows: &[Value],
        steps: &[Step],
        batch: usize,
    ) -> (Result<Vec<Value>>, Result<Vec<Value>>) {
        let stats = Stats::default();
        let mut col_out = Vec::new();
        let col_res = drive_columnar(rows, steps, batch, &stats, &mut |v| {
            col_out.push(v);
            Ok(())
        })
        .map(|()| std::mem::take(&mut col_out));
        let mut row_out = Vec::new();
        let row_res = (|| {
            for row in rows {
                drive(row, steps, &mut |v| {
                    row_out.push(v);
                    Ok(())
                })?;
            }
            Ok(())
        })()
        .map(|()| std::mem::take(&mut row_out));
        (col_res, row_res)
    }

    fn bin(op: BinOp, a: RowExpr, b: RowExpr) -> RowExpr {
        RowExpr::Bin(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn arithmetic_chain_matches_row_path() {
        let rows = longs(&(0..1000).collect::<Vec<i64>>());
        let steps = vec![
            step_map(
                bin(BinOp::Mul, RowExpr::Input, RowExpr::Const(Value::Long(3))),
                None,
            ),
            step_map(
                bin(BinOp::Add, RowExpr::Input, RowExpr::Const(Value::Long(7))),
                None,
            ),
            step_filter(
                bin(BinOp::Gt, RowExpr::Input, RowExpr::Const(Value::Long(100))),
                None,
            ),
            step_map(
                bin(BinOp::Mod, RowExpr::Input, RowExpr::Const(Value::Long(11))),
                None,
            ),
        ];
        let (col, row) = run_both(&rows, &steps, 64);
        assert_eq!(col.unwrap(), row.unwrap());
    }

    #[test]
    fn tuple_projection_and_rebuild_match_row_path() {
        let rows: Vec<Value> = (0..300)
            .map(|i| Value::pair(Value::Long(i), Value::Double(i as f64 / 2.0)))
            .collect();
        let steps = vec![step_map(
            RowExpr::Tuple(vec![
                RowExpr::Col(1),
                bin(BinOp::Add, RowExpr::Col(0), RowExpr::Const(Value::Long(1))),
            ]),
            None,
        )];
        let (col, row) = run_both(&rows, &steps, 128);
        assert_eq!(col.unwrap(), row.unwrap());
    }

    #[test]
    fn mixed_long_double_comparison_promotes_like_the_runtime() {
        let rows: Vec<Value> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    Value::Long(i)
                } else {
                    Value::Double(i as f64 - 0.5)
                }
            })
            .collect();
        let steps = vec![step_filter(
            bin(
                BinOp::Ge,
                RowExpr::Input,
                RowExpr::Const(Value::Double(50.0)),
            ),
            None,
        )];
        let (col, row) = run_both(&rows, &steps, 32);
        assert_eq!(col.unwrap(), row.unwrap());
    }

    #[test]
    fn string_dictionary_equality_matches_row_path() {
        let words = ["apple", "pear", "plum"];
        let rows: Vec<Value> = (0..200).map(|i| Value::str(words[i % 3])).collect();
        let steps = vec![step_filter(
            bin(BinOp::Eq, RowExpr::Input, RowExpr::Input),
            None,
        )];
        let (col, row) = run_both(&rows, &steps, 64);
        assert_eq!(col.unwrap(), row.unwrap());
        // And against a constant (falls back per element, same rows).
        let steps = vec![step_filter(
            bin(
                BinOp::Eq,
                RowExpr::Input,
                RowExpr::Const(Value::str("pear")),
            ),
            None,
        )];
        let (col, row) = run_both(&rows, &steps, 64);
        let kept = col.unwrap();
        assert_eq!(kept.len(), 200 / 3 + 1);
        assert_eq!(kept, row.unwrap());
    }

    #[test]
    fn division_by_zero_replays_to_the_identical_first_error_and_prefix() {
        // Row 700 divides by zero: the columnar batch fails, replays, and
        // both paths must deliver the same sunk prefix and the same error.
        let rows: Vec<Value> = (0..1000).map(|i| Value::Long(i - 700)).collect();
        let steps = vec![step_map(
            bin(BinOp::Div, RowExpr::Const(Value::Long(1)), RowExpr::Input),
            Some("s3:X := 1 / V[i]"),
        )];
        let stats = Stats::default();
        let mut col_out = Vec::new();
        let col_err = drive_columnar(&rows, &steps, 256, &stats, &mut |v| {
            col_out.push(v);
            Ok(())
        })
        .unwrap_err();
        let mut row_out = Vec::new();
        let row_err = (|| -> Result<()> {
            for row in &rows {
                drive(row, &steps, &mut |v| {
                    row_out.push(v);
                    Ok(())
                })?;
            }
            Ok(())
        })()
        .unwrap_err();
        assert_eq!(col_err.to_string(), row_err.to_string());
        assert!(col_err.to_string().contains("s3:X"), "{col_err}");
        assert_eq!(col_out, row_out, "identical sunk prefix");
        let snap = stats.snapshot();
        assert!(snap.vectorized_batches >= 2, "{snap:?}");
    }

    #[test]
    fn opaque_steps_are_ineligible() {
        let opaque = Step {
            op: StepOp::Map(Arc::new(|v: &Value| Ok(v.clone()))),
            tag: None,
            expr: None,
        };
        let transparent = step_map(RowExpr::Input, None);
        assert!(!eligible(&[]));
        assert!(!eligible(std::slice::from_ref(&opaque)));
        assert!(!eligible(&[transparent.clone(), opaque]));
        assert!(eligible(&[transparent]));
    }

    #[test]
    fn empty_filter_result_short_circuits() {
        let rows = longs(&[1, 2, 3]);
        let steps = vec![
            step_filter(
                bin(BinOp::Gt, RowExpr::Input, RowExpr::Const(Value::Long(10))),
                None,
            ),
            step_map(
                bin(BinOp::Div, RowExpr::Input, RowExpr::Const(Value::Long(0))),
                None,
            ),
        ];
        // Everything is filtered out before the would-be division by zero.
        let (col, row) = run_both(&rows, &steps, 8);
        assert_eq!(col.unwrap(), Vec::<Value>::new());
        assert_eq!(row.unwrap(), Vec::<Value>::new());
    }

    #[test]
    fn field_access_matches_value_semantics() {
        let rows: Vec<Value> = (0..50)
            .map(|i| Value::pair(Value::Long(i), Value::Long(i * i)))
            .collect();
        let steps = vec![step_map(
            RowExpr::Field(Box::new(RowExpr::Input), "_2".to_string()),
            None,
        )];
        let (col, row) = run_both(&rows, &steps, 16);
        assert_eq!(col.unwrap(), row.unwrap());
        // A missing field errors identically on both paths.
        let steps = vec![step_map(
            RowExpr::Field(Box::new(RowExpr::Input), "_9".to_string()),
            None,
        )];
        let (col, row) = run_both(&rows, &steps, 16);
        assert_eq!(col.unwrap_err().to_string(), row.unwrap_err().to_string());
    }

    #[test]
    #[should_panic(expected = "columnar batch must be positive")]
    fn zero_batch_panics() {
        let _ = ColumnarExecutor::new(0);
    }
}
