//! Per-stage parallel execution over partitions.
//!
//! Each physical stage calls [`run_stage`] with a per-partition task; the
//! pool spawns up to `workers` scoped threads that pull partition indexes
//! off a shared atomic counter (simple self-scheduling, which balances
//! skewed partitions well).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `task` once per input partition on up to `workers` threads and
/// returns the outputs in partition order. Errors short-circuit: the first
/// error (by partition index) is returned.
pub fn run_stage<T, R, E, F>(workers: usize, inputs: &[T], task: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = workers.min(n);
    if threads <= 1 {
        return inputs.iter().enumerate().map(|(i, t)| task(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<R, E>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = task(i, &inputs[i]);
                results.lock().expect("pool lock")[i] = Some(out);
            });
        }
    });
    let mut collected = Vec::with_capacity(n);
    for slot in results.into_inner().expect("pool lock") {
        match slot.expect("every partition processed") {
            Ok(r) => collected.push(r),
            Err(e) => return Err(e),
        }
    }
    Ok(collected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processes_all_partitions_in_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_stage::<_, _, (), _>(8, &inputs, |i, &x| {
            assert_eq!(i, x);
            Ok(x * 2)
        })
        .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn propagates_errors() {
        let inputs: Vec<usize> = (0..10).collect();
        let err = run_stage(4, &inputs, |_, &x| if x == 7 { Err("boom") } else { Ok(x) });
        assert_eq!(err, Err("boom"));
    }

    #[test]
    fn empty_input_is_fine() {
        let out = run_stage::<usize, usize, (), _>(4, &[], |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let inputs = vec![1, 2, 3];
        let out = run_stage::<_, _, (), _>(1, &inputs, |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }
}
