//! Morsel-driven, work-stealing stage execution.
//!
//! Every physical stage becomes a list of scheduling items — whole
//! partitions, coalesced groups of tiny partitions, or fixed-size row
//! spans (*morsels*) of a split partition — and runs on a persistent
//! [`WorkerPool`] built once per [`Context`] and reused across stages.
//! Each worker owns a deque seeded with a contiguous block of items; the
//! owner pops from the front (so it walks its block in canonical order)
//! and idle workers steal from the back of the nearest non-empty victim,
//! Chase-Lev style. The submitting thread participates as worker 0, so a
//! stage never parks a core behind a condvar while work remains.
//!
//! ## Determinism contract
//!
//! Scheduling never changes results:
//!
//! * every item writes into its own pre-allocated result slot (no shared
//!   results lock), and the submitter stitches slots back in item order —
//!   which the planners keep equal to canonical `(partition, row-span)`
//!   order;
//! * the first error is the error of the **lowest-indexed** failing item,
//!   not the first to fail on the wall clock: an item may be skipped or
//!   cancelled only when a *lower-indexed* item has already failed, so
//!   every item below the final minimum ran to completion and the minimum
//!   is exact;
//! * cancellation is cooperative: once an error is recorded, queued items
//!   above it are skipped at claim time and in-flight tasks above it can
//!   poll [`Cancel::cancelled`] mid-morsel and bail (their own results —
//!   including any bail-out error — are discarded, never surfaced).
//!
//! The pre-morsel scheduler (one task per item, self-scheduled off an
//! atomic counter, no stealing) is retained behind
//! `DIABLO_SCHEDULER=static` / [`Context::set_static_scheduler`] as the
//! benchmark baseline; it shares the poison flag and the per-slot writes,
//! so only the schedule differs.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::Context;

/// Result slots, one per scheduling item. Safe because the deque protocol
/// hands every index to exactly one worker, which is the only writer of
/// that slot; the submitter reads only after all items completed.
struct Slots<X>(Vec<UnsafeCell<Option<X>>>);

// SAFETY: the deque protocol hands each index to exactly one worker (the
// sole writer of that `UnsafeCell`), and the submitter reads only after
// the stage's completion barrier, so no slot is ever aliased mutably.
unsafe impl<X: Send> Sync for Slots<X> {}

impl<X> Slots<X> {
    fn new(n: usize) -> Slots<X> {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// Each index must be written by at most one thread, and no thread may
    /// read it until the stage's completion barrier.
    unsafe fn put(&self, i: usize, v: X) {
        *self.0[i].get() = Some(v);
    }

    fn into_vec(self) -> Vec<Option<X>> {
        self.0.into_iter().map(|c| c.into_inner()).collect()
    }
}

/// Cooperative cancellation token handed to every stage task. `cancelled`
/// is true once a lower-indexed item has failed — this task's outcome can
/// no longer be surfaced, so it may stop mid-morsel and return any error.
pub(crate) struct Cancel<'a> {
    min_error: &'a AtomicUsize,
    idx: usize,
}

impl Cancel<'_> {
    pub fn cancelled(&self) -> bool {
        self.min_error.load(Ordering::Relaxed) < self.idx
    }
}

/// What one stage's schedule did, for [`Stats`](crate::Stats) and explain
/// notes.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct StageMetrics {
    /// Items actually executed (skipped-after-poison items not counted).
    pub morsels: u64,
    /// Items claimed from another worker's deque.
    pub steals: u64,
    /// Deepest single worker deque at submission.
    pub max_depth: u64,
    /// Total scheduled weight (caller-provided, usually rows).
    pub total_weight: u64,
    /// Largest per-worker share of that weight actually executed.
    pub max_worker_weight: u64,
}

/// Type-erased stage task pointer: `(worker index, item index)`. Only
/// dereferenced by workers holding a claimed item of the stage, and every
/// item finishes before the submitting `run` call returns, so the erased
/// borrow never outlives its stack frame.
struct TaskPtr(*const (dyn Fn(usize, usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and is only dereferenced while the submitting `run` frame — which owns
// the closure — is blocked waiting for the stage to drain, so sending the
// raw pointer across worker threads cannot outlive or alias the closure.
unsafe impl Send for TaskPtr {}
// SAFETY: same argument as `Send`; workers only ever call the closure
// through a shared reference, which `dyn Fn + Sync` permits concurrently.
unsafe impl Sync for TaskPtr {}

/// One in-flight stage: the erased task, the per-worker deques of item
/// indexes, and the completion/steal accounting.
struct ActiveStage {
    task: TaskPtr,
    deques: Vec<Mutex<VecDeque<usize>>>,
    pending: AtomicUsize,
    steals: AtomicU64,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct PoolState {
    stage: Option<Arc<ActiveStage>>,
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes workers when a stage is published (or shutdown).
    work_cv: Condvar,
    /// Wakes the submitter when the last pending item completes.
    done_cv: Condvar,
}

thread_local! {
    /// True while this thread is executing pool work — a nested stage
    /// submitted from inside a task runs inline instead of deadlocking on
    /// the busy pool.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The persistent work-stealing pool: `width - 1` background threads plus
/// the submitting thread. Dropped (threads joined) with the last clone of
/// its owning [`Context`].
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    width: usize,
}

impl WorkerPool {
    pub fn new(workers: usize) -> WorkerPool {
        let width = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                stage: None,
                epoch: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let threads = (1..width)
            .map(|me| {
                let sh = shared.clone();
                std::thread::Builder::new()
                    .name(format!("diablo-worker-{me}"))
                    .spawn(move || worker_loop(sh, me))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            width,
        }
    }

    /// Runs `task` once per input item, work-stealing across the pool,
    /// and returns outputs in item order. `weight(i)` is the item's
    /// scheduling weight (rows) for the balance metrics. The first error
    /// by item index wins; later items are cancelled cooperatively.
    pub fn run<T, R, E, F, W>(
        &self,
        inputs: &[T],
        weight: W,
        task: F,
    ) -> (Result<Vec<R>, E>, StageMetrics)
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T, &Cancel<'_>) -> Result<R, E> + Sync,
        W: Fn(usize) -> u64 + Sync,
    {
        let n = inputs.len();
        let mut metrics = StageMetrics {
            total_weight: (0..n).map(&weight).sum(),
            ..StageMetrics::default()
        };
        if n == 0 {
            return (Ok(Vec::new()), metrics);
        }
        if n == 1 || self.width == 1 || IN_POOL.get() {
            return (run_inline(inputs, &task, &mut metrics), metrics);
        }

        let min_error = AtomicUsize::new(usize::MAX);
        let slots: Slots<Result<R, E>> = Slots::new(n);
        let executed = AtomicU64::new(0);
        let worker_weight: Vec<AtomicU64> = (0..self.width).map(|_| AtomicU64::new(0)).collect();
        let body = |worker: usize, i: usize| {
            // Claim-time poison check: a lower item already failed, so
            // this item's outcome can never surface — skip it entirely.
            if min_error.load(Ordering::Acquire) < i {
                return;
            }
            let cancel = Cancel {
                min_error: &min_error,
                idx: i,
            };
            let out = task(i, &inputs[i], &cancel);
            if out.is_err() {
                min_error.fetch_min(i, Ordering::AcqRel);
            }
            executed.fetch_add(1, Ordering::Relaxed);
            worker_weight[worker].fetch_add(weight(i), Ordering::Relaxed);
            // SAFETY: item `i` was claimed from a deque exactly once, so
            // this worker is its only writer, and the submitter reads the
            // slot only after the stage's completion barrier.
            unsafe { slots.put(i, out) };
        };

        // Seed each worker's deque with a contiguous block of items, so
        // owners walk their block in canonical order and thieves take the
        // highest-indexed items from the back.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..self.width)
            .map(|k| {
                let lo = k * n / self.width;
                let hi = (k + 1) * n / self.width;
                Mutex::new((lo..hi).collect())
            })
            .collect();
        metrics.max_depth = deques
            .iter()
            .map(|d| d.lock().expect("pool deque").len() as u64)
            .max()
            .unwrap_or(0);
        // Erase the closure's borrow lifetime: workers only dereference
        // the pointer while holding a claimed item, and `run` does not
        // return until every item completed, so the borrow outlives every
        // dereference even though the type says 'static.
        //
        // SAFETY: only the lifetime is transmuted (same wide-pointer
        // layout); the resulting pointer never escapes this `run` frame,
        // which outlives all dereferences per the drain barrier below.
        let erased: *const (dyn Fn(usize, usize) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync + '_),
                *const (dyn Fn(usize, usize) + Sync + 'static),
            >(&body)
        };
        let stage = Arc::new(ActiveStage {
            task: TaskPtr(erased),
            deques,
            pending: AtomicUsize::new(n),
            steals: AtomicU64::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.shared.state.lock().expect("pool state");
            if st.stage.is_some() {
                // Another driver thread has a stage in flight; don't
                // interleave two schedules — run this one inline.
                drop(st);
                return (run_inline(inputs, &task, &mut metrics), metrics);
            }
            st.stage = Some(stage.clone());
            st.epoch += 1;
            self.shared.work_cv.notify_all();
        }

        // Participate as worker 0, then wait out in-flight items.
        IN_POOL.set(true);
        work(&self.shared, &stage, 0);
        IN_POOL.set(false);
        {
            let mut st = self.shared.state.lock().expect("pool state");
            while stage.pending.load(Ordering::Acquire) != 0 {
                st = self.shared.done_cv.wait(st).expect("pool state");
            }
            st.stage = None;
        }
        if let Some(p) = stage.panic.lock().expect("pool panic slot").take() {
            std::panic::resume_unwind(p);
        }

        metrics.morsels = executed.load(Ordering::Relaxed);
        metrics.steals = stage.steals.load(Ordering::Relaxed);
        metrics.max_worker_weight = worker_weight
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        (collect_slots(slots, &min_error), metrics)
    }

    /// The retained pre-morsel scheduler: one task per item pulled off an
    /// atomic counter by per-stage scoped threads. No splitting, no
    /// stealing — the benchmark baseline — but completions write into
    /// per-item slots (never a shared results lock) and the poison flag
    /// cancels queued work after the first error, like the pool.
    pub fn run_static<T, R, E, F, W>(
        workers: usize,
        inputs: &[T],
        weight: W,
        task: F,
    ) -> (Result<Vec<R>, E>, StageMetrics)
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T, &Cancel<'_>) -> Result<R, E> + Sync,
        W: Fn(usize) -> u64 + Sync,
    {
        let n = inputs.len();
        let mut metrics = StageMetrics {
            total_weight: (0..n).map(&weight).sum(),
            ..StageMetrics::default()
        };
        if n == 0 {
            return (Ok(Vec::new()), metrics);
        }
        let threads = workers.min(n);
        if threads <= 1 {
            return (run_inline(inputs, &task, &mut metrics), metrics);
        }
        metrics.max_depth = n as u64;
        let min_error = AtomicUsize::new(usize::MAX);
        let slots: Slots<Result<R, E>> = Slots::new(n);
        let next = AtomicUsize::new(0);
        let executed = AtomicU64::new(0);
        let thread_weight: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let slots = &slots;
                let next = &next;
                let min_error = &min_error;
                let executed = &executed;
                let thread_weight = &thread_weight;
                let task = &task;
                let weight = &weight;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if min_error.load(Ordering::Acquire) < i {
                        continue;
                    }
                    let cancel = Cancel { min_error, idx: i };
                    let out = task(i, &inputs[i], &cancel);
                    if out.is_err() {
                        min_error.fetch_min(i, Ordering::AcqRel);
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    thread_weight[t].fetch_add(weight(i), Ordering::Relaxed);
                    // SAFETY: the `fetch_add` on `next` hands index `i`
                    // to exactly one thread, and the scope join is the
                    // completion barrier before any slot is read.
                    unsafe { slots.put(i, out) };
                });
            }
        });
        metrics.morsels = executed.load(Ordering::Relaxed);
        metrics.max_worker_weight = thread_weight
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0);
        (collect_slots(slots, &min_error), metrics)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state");
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Sequential fallback (single worker, single item, or nested stage):
/// short-circuits at the first error, which is trivially the canonical
/// one.
fn run_inline<T, R, E, F>(inputs: &[T], task: &F, metrics: &mut StageMetrics) -> Result<Vec<R>, E>
where
    F: Fn(usize, &T, &Cancel<'_>) -> Result<R, E> + Sync,
{
    let never = AtomicUsize::new(usize::MAX);
    metrics.max_worker_weight = metrics.total_weight;
    metrics.max_depth = inputs.len() as u64;
    let mut out = Vec::with_capacity(inputs.len());
    for (i, t) in inputs.iter().enumerate() {
        let cancel = Cancel {
            min_error: &never,
            idx: i,
        };
        metrics.morsels += 1;
        out.push(task(i, t, &cancel)?);
    }
    Ok(out)
}

/// Stitches result slots back in item order. If any item failed, the
/// lowest failing index holds the canonical error (all items below it ran
/// to completion — see the module docs).
fn collect_slots<R, E>(slots: Slots<Result<R, E>>, min_error: &AtomicUsize) -> Result<Vec<R>, E> {
    let mut slots = slots.into_vec();
    let me = min_error.load(Ordering::Acquire);
    if me != usize::MAX {
        match slots[me].take() {
            Some(Err(e)) => return Err(e),
            _ => unreachable!("poison index always holds its error"),
        }
    }
    let mut collected = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.expect("every item processed") {
            Ok(r) => collected.push(r),
            Err(_) => unreachable!("errors imply a poison index"),
        }
    }
    Ok(collected)
}

fn worker_loop(shared: Arc<PoolShared>, me: usize) {
    IN_POOL.set(true);
    let mut seen = 0u64;
    loop {
        let stage = {
            let mut st = shared.state.lock().expect("pool state");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(stage) = st.stage.clone() {
                        break stage;
                    }
                }
                st = shared.work_cv.wait(st).expect("pool state");
            }
        };
        work(&shared, &stage, me);
    }
}

/// One worker's participation in a stage: drain the own deque from the
/// front, then steal from the back of the nearest non-empty victim; stop
/// when no queued item remains anywhere.
fn work(shared: &PoolShared, stage: &ActiveStage, me: usize) {
    let width = stage.deques.len();
    loop {
        let mut claimed = stage.deques[me].lock().expect("pool deque").pop_front();
        let mut stolen = false;
        if claimed.is_none() {
            for off in 1..width {
                let v = (me + off) % width;
                if let Some(i) = stage.deques[v].lock().expect("pool deque").pop_back() {
                    claimed = Some(i);
                    stolen = true;
                    break;
                }
            }
        }
        let Some(item) = claimed else { return };
        if stolen {
            stage.steals.fetch_add(1, Ordering::Relaxed);
        }
        // Catch panics so a failing task can't wedge the persistent pool;
        // the submitter re-raises after the stage drains.
        //
        // SAFETY: holding a claimed, not-yet-completed item keeps the
        // submitting `run` frame — and therefore the erased closure the
        // pointer borrows — alive until after this call returns (the
        // `pending` decrement below is what releases the submitter).
        let run = unsafe { &*stage.task.0 };
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| run(me, item))) {
            let mut slot = stage.panic.lock().expect("pool panic slot");
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        if stage.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last item: wake the submitter. Taking the state lock makes
            // the notify race-free against its pending re-check.
            let _st = shared.state.lock().expect("pool state");
            shared.done_cv.notify_all();
        }
    }
}

/// Runs `task` once per input on the context's scheduler and returns the
/// outputs in input order; the first error by input index is returned.
/// This is the compatibility entry point for stages whose items have no
/// meaningful row weight.
pub(crate) fn run_stage<T, R, E, F>(ctx: &Context, inputs: &[T], task: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    run_stage_weighted(ctx, inputs, |_| 1, |i, t, _| task(i, t))
}

/// [`run_stage`] with per-item scheduling weights (rows) and a [`Cancel`]
/// token for mid-morsel cancellation, recording schedule statistics and
/// (when a plan trace is active) an explain note.
pub(crate) fn run_stage_weighted<T, R, E, F, W>(
    ctx: &Context,
    inputs: &[T],
    weight: W,
    task: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T, &Cancel<'_>) -> Result<R, E> + Sync,
    W: Fn(usize) -> u64 + Sync,
{
    let start = Instant::now();
    let (out, m) = if ctx.static_scheduler() {
        WorkerPool::run_static(ctx.workers(), inputs, weight, task)
    } else {
        ctx.pool().run(inputs, weight, task)
    };
    let cost_us = start.elapsed().as_micros() as u64;
    let critical_us = if m.total_weight == 0 {
        cost_us
    } else {
        ((cost_us as u128 * m.max_worker_weight as u128) / m.total_weight as u128) as u64
    };
    ctx.stats()
        .record_stage_schedule(m.morsels, m.steals, m.max_depth, cost_us, critical_us);
    if inputs.len() > 1 {
        ctx.plan_note(format!(
            "sched: {} item(s) across {} worker(s) — {} run, {} stolen, max queue {}",
            inputs.len(),
            ctx.workers(),
            m.morsels,
            m.steals,
            m.max_depth
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_ctx(workers: usize) -> Context {
        let ctx = Context::new(workers, workers.max(2));
        ctx.set_static_scheduler(false);
        ctx
    }

    #[test]
    fn processes_all_partitions_in_order() {
        let inputs: Vec<usize> = (0..100).collect();
        let out = run_stage::<_, _, (), _>(&pool_ctx(8), &inputs, |i, &x| {
            assert_eq!(i, x);
            Ok(x * 2)
        })
        .unwrap();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn propagates_errors() {
        let inputs: Vec<usize> = (0..10).collect();
        let err = run_stage(&pool_ctx(4), &inputs, |_, &x| {
            if x == 7 {
                Err("boom")
            } else {
                Ok(x)
            }
        });
        assert_eq!(err, Err("boom"));
    }

    #[test]
    fn empty_input_is_fine() {
        let out = run_stage::<usize, usize, (), _>(&pool_ctx(4), &[], |_, &x| Ok(x)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_inline() {
        let inputs = vec![1, 2, 3];
        let out = run_stage::<_, _, (), _>(&pool_ctx(1), &inputs, |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn first_error_keeps_item_index_identity() {
        // Two failing items: the lower index must win no matter which
        // fails first on the wall clock, on both schedulers.
        for static_sched in [false, true] {
            let ctx = pool_ctx(4);
            ctx.set_static_scheduler(static_sched);
            let inputs: Vec<usize> = (0..64).collect();
            let err = run_stage(&ctx, &inputs, |_, &x| {
                if x == 3 {
                    // The later-indexed error tends to land first.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    Err("low")
                } else if x == 40 {
                    Err("high")
                } else {
                    Ok(x)
                }
            });
            assert_eq!(err, Err("low"), "static={static_sched}");
        }
    }

    #[test]
    fn poison_cancels_queued_work_after_a_failure() {
        // Regression for the old pool, which kept executing every queued
        // partition after the first error. Item 0 fails immediately; of
        // the remaining 500 items, only the handful already in flight may
        // still run.
        for static_sched in [false, true] {
            let ctx = pool_ctx(4);
            ctx.set_static_scheduler(static_sched);
            let executed = AtomicUsize::new(0);
            let inputs: Vec<usize> = (0..500).collect();
            let err = run_stage(&ctx, &inputs, |_, &x| {
                if x == 0 {
                    return Err("poison");
                }
                executed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(200));
                Ok(x)
            });
            assert_eq!(err, Err("poison"));
            let ran = executed.load(Ordering::Relaxed);
            assert!(
                ran < 100,
                "poison must cancel queued items (static={static_sched}, ran {ran}/500)"
            );
        }
    }

    #[test]
    fn cancel_token_stops_in_flight_morsels() {
        // A long-running item polls its token and bails once a lower item
        // has failed; its bail-out error must never surface.
        let ctx = pool_ctx(2);
        let inputs: Vec<usize> = (0..2).collect();
        let err = run_stage_weighted(
            &ctx,
            &inputs,
            |_| 1,
            |_, &x, cancel: &Cancel<'_>| {
                if x == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    return Err("real");
                }
                for _ in 0..10_000 {
                    if cancel.cancelled() {
                        return Err("cancelled");
                    }
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                Ok(x)
            },
        );
        assert_eq!(err, Err("real"));
    }

    #[test]
    fn work_is_stolen_from_a_skewed_schedule() {
        // One contiguous block of slow items lands on one worker's deque;
        // with stealing, other workers must take some of them.
        let ctx = pool_ctx(4);
        let before = ctx.stats().snapshot();
        let inputs: Vec<usize> = (0..64).collect();
        let out = run_stage::<_, _, (), _>(&ctx, &inputs, |_, &x| {
            if x < 16 {
                std::thread::sleep(std::time::Duration::from_micros(500));
            }
            Ok(x)
        })
        .unwrap();
        assert_eq!(out.len(), 64);
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(after.morsels, 64);
        assert!(after.steals > 0, "idle workers must steal: {after:?}");
    }

    #[test]
    fn nested_stages_run_inline_without_deadlock() {
        let ctx = pool_ctx(4);
        let inputs: Vec<usize> = (0..8).collect();
        let out = run_stage::<_, _, (), _>(&ctx, &inputs, |_, &x| {
            let inner: Vec<usize> = (0..4).collect();
            let inner_out = run_stage::<_, _, (), _>(&ctx, &inner, |_, &y| Ok(y * 10))?;
            Ok(x + inner_out.iter().sum::<usize>())
        })
        .unwrap();
        assert_eq!(out, (0..8).map(|x| x + 60).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_a_panicking_task() {
        let ctx = pool_ctx(4);
        let inputs: Vec<usize> = (0..16).collect();
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = run_stage::<_, _, (), _>(&ctx, &inputs, |_, &x| {
                if x == 5 {
                    panic!("task panic");
                }
                Ok(x)
            });
        }));
        assert!(panicked.is_err(), "the panic must propagate");
        // The pool must still schedule new stages afterwards.
        let out = run_stage::<_, _, (), _>(&ctx, &inputs, |_, &x| Ok(x + 1)).unwrap();
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn schedule_metrics_reach_stats() {
        let ctx = pool_ctx(3);
        let before = ctx.stats().snapshot();
        let inputs: Vec<usize> = (0..30).collect();
        let _ = run_stage::<_, _, (), _>(&ctx, &inputs, |_, &x| Ok(x)).unwrap();
        let after = ctx.stats().snapshot().since(&before);
        assert_eq!(after.morsels, 30);
        assert_eq!(after.max_queue_depth, 10);
        assert!(after.sched_cost_us >= after.sched_critical_us);
    }
}
