//! The shared, byte-budgeted dataset cache: where forced materializations
//! live, instead of per-dataset `Arc<OnceLock>` pins that nothing could
//! ever release.
//!
//! One [`DatasetCache`] is owned by a [`Context`](crate::Context) and
//! shared by every [`fork`](crate::Context::fork)ed tenant context, so a
//! multi-tenant server runs all sessions under **one** budget. Entries are
//! keyed by a dataset's stable cache id (a [`CacheSlot`], shared by clones
//! of the dataset and embedded in downstream plans through
//! `PlanOp::Cached`) and live in two tiers:
//!
//! * **memory** — the materialized `Arc<Vec<Vec<Value>>>`, charged its
//!   sampled in-memory byte estimate against the budget
//!   (`DIABLO_DATASET_BUDGET` / [`Context::set_dataset_budget`]);
//! * **disk** — the partitions encoded with the exchange's canonical
//!   binary codec ([`crate::encode_value`]) into one file per entry, with
//!   a per-partition `(offset, len, rows)` index so reads decode segment
//!   by segment. Disk entries are charged their encoded size against a
//!   ledger of [`DISK_BUDGET_FACTOR`] × the memory budget.
//!
//! Inserting past the memory budget **demotes** least-recently-used
//! memory entries to disk (a dataset spill); past the disk ledger, LRU
//! disk entries are **evicted** outright and marked, so the next read
//! misses and the owner transparently **recomputes** the dataset from its
//! plan lineage and reinserts it. A budget of `0` disables caching
//! entirely (every insert is an immediate eviction; deterministic
//! recompute keeps results byte-identical), and an unbounded budget (the
//! default) keeps every entry in memory forever — the pre-cache behavior.
//!
//! Eviction, spill, and recompute events are counted on the **calling
//! context's** statistics (the cache itself is shared across tenants, the
//! counters are not), as `dataset_spills` / `dataset_spilled_bytes` /
//! `dataset_evictions` / `dataset_recomputes`.
//!
//! Entry lifetime is tied to its [`CacheSlot`]: when the last dataset
//! clone *and* the last plan referencing the slot drop, the slot's `Drop`
//! removes the entry — a re-bound session variable frees its old
//! materialization instead of pinning it for the life of the process.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use diablo_runtime::{RuntimeError, Value};

use crate::dataset::estimate_bytes;
use crate::exchange::{decode_value, encode_value};
use crate::plan::Result;
use crate::Context;

/// How many memory budgets' worth of **encoded** bytes the disk tier may
/// hold before LRU disk entries are dropped outright. Disk is cheap but
/// not free: without a cap, a long-lived session would fill the temp
/// volume exactly the way the old pinned cache filled RAM.
const DISK_BUDGET_FACTOR: u64 = 8;

/// Process-wide counter behind every dataset cache id.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Process-wide counter naming each cache's temp directory.
static CACHE_ID: AtomicU64 = AtomicU64::new(0);

/// A dataset's stable cache identity. Clones of a dataset share one slot;
/// `PlanOp::Cached` nodes in downstream plans hold the slot too, so the
/// entry outlives the dataset handle for exactly as long as some plan can
/// still read it. Dropping the last reference removes the entry.
pub(crate) struct CacheSlot {
    id: u64,
    cache: Arc<DatasetCache>,
}

impl CacheSlot {
    pub(crate) fn new(cache: Arc<DatasetCache>) -> CacheSlot {
        CacheSlot {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            cache,
        }
    }

    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    pub(crate) fn cache(&self) -> &Arc<DatasetCache> {
        &self.cache
    }
}

impl Drop for CacheSlot {
    fn drop(&mut self) {
        // Nothing can read this entry again — not an eviction, so no
        // counter and no evicted mark (a mark would count phantom
        // recomputes for an id that can never be forced again).
        self.cache.forget(self.id);
    }
}

/// Where one entry's partitions live.
/// One spilled partition inside an entry's file: byte offset, encoded
/// length, and row count.
type Segment = (u64, u64, usize);

enum Tier {
    /// In memory, charged its sampled byte estimate.
    Mem(Arc<Vec<Vec<Value>>>),
    /// On disk: one encoded file with a per-partition segment index.
    Disk {
        path: PathBuf,
        /// `(offset, encoded len, rows)` per partition.
        index: Vec<Segment>,
    },
}

struct Entry {
    tier: Tier,
    /// Bytes charged against the tier's ledger.
    bytes: u64,
    /// LRU clock value of the last touch.
    touched: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    /// Ids the cache dropped under pressure: a read of one of these is a
    /// **recompute**, counted on the reader's stats.
    evicted: HashSet<u64>,
    clock: u64,
    mem_bytes: u64,
    disk_bytes: u64,
    /// The cache's temp directory, created on first spill.
    dir: Option<PathBuf>,
}

/// The shared dataset cache. See the module docs for the tiering and
/// eviction contract.
pub(crate) struct DatasetCache {
    /// Memory budget in bytes; `u64::MAX` means unbounded.
    budget: AtomicU64,
    /// Names this cache's temp directory.
    cache_id: u64,
    inner: Mutex<Inner>,
}

impl DatasetCache {
    pub(crate) fn new(budget: u64) -> DatasetCache {
        DatasetCache {
            budget: AtomicU64::new(budget),
            cache_id: CACHE_ID.fetch_add(1, Ordering::Relaxed),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                evicted: HashSet::new(),
                clock: 0,
                mem_bytes: 0,
                disk_bytes: 0,
                dir: None,
            }),
        }
    }

    /// Sets the memory budget; `u64::MAX` means unbounded. Applies to the
    /// next insert — already-resident entries are not re-evaluated until
    /// something new comes in.
    pub(crate) fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// The memory budget in bytes (`u64::MAX` = unbounded).
    pub(crate) fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    /// Whether the id currently has a readable entry (either tier).
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.inner
            .lock()
            .expect("dataset cache lock")
            .entries
            .contains_key(&id)
    }

    /// `(partitions, total rows)` of a resident entry, without touching
    /// the LRU clock or reading disk — for `Debug` rendering.
    pub(crate) fn shape(&self, id: u64) -> Option<(usize, usize)> {
        let inner = self.inner.lock().expect("dataset cache lock");
        inner.entries.get(&id).map(|e| match &e.tier {
            Tier::Mem(parts) => (parts.len(), parts.iter().map(Vec::len).sum()),
            Tier::Disk { index, .. } => (index.len(), index.iter().map(|&(_, _, r)| r).sum()),
        })
    }

    /// Reads an entry: a memory hit is a clone of the shared `Arc`, a
    /// disk hit decodes the entry's file segment by segment. A miss on an
    /// **evicted** id counts one recompute on `ctx`'s stats (the caller
    /// is about to re-derive the dataset from its lineage).
    pub(crate) fn get(&self, id: u64, ctx: &Context) -> Result<Option<Arc<Vec<Vec<Value>>>>> {
        let mut inner = self.inner.lock().expect("dataset cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(&id) {
            Some(entry) => {
                entry.touched = clock;
                match &entry.tier {
                    Tier::Mem(parts) => Ok(Some(parts.clone())),
                    Tier::Disk { path, index } => {
                        let parts = read_entry(id, path, index)?;
                        Ok(Some(Arc::new(parts)))
                    }
                }
            }
            None => {
                if inner.evicted.contains(&id) {
                    ctx.stats().record_dataset_recompute();
                }
                Ok(None)
            }
        }
    }

    /// Inserts a freshly materialized dataset, then enforces both
    /// ledgers: memory overflow demotes LRU memory entries to disk
    /// (counted as dataset spills), disk overflow drops LRU disk entries
    /// outright (counted as evictions, marked for recompute accounting).
    pub(crate) fn insert(&self, id: u64, parts: Arc<Vec<Vec<Value>>>, ctx: &Context) -> Result<()> {
        let budget = self.budget();
        let mut inner = self.inner.lock().expect("dataset cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        inner.evicted.remove(&id);
        remove_entry(&mut inner, id);
        if budget == 0 {
            // Caching is off: the insert itself is the eviction, and the
            // mark makes the next read count a recompute.
            inner.evicted.insert(id);
            ctx.stats().record_dataset_eviction();
            return Ok(());
        }
        let bytes = estimate_bytes(&parts);
        if budget == u64::MAX || bytes <= budget {
            inner.mem_bytes += bytes;
            inner.entries.insert(
                id,
                Entry {
                    tier: Tier::Mem(parts),
                    bytes,
                    touched: clock,
                },
            );
        } else {
            // Bigger than the whole memory budget: straight to disk.
            let dir = self.dir(&mut inner)?;
            let (path, index, encoded) = spill_entry(&dir, id, &parts)?;
            ctx.stats().record_dataset_spill(encoded);
            inner.disk_bytes += encoded;
            inner.entries.insert(
                id,
                Entry {
                    tier: Tier::Disk { path, index },
                    bytes: encoded,
                    touched: clock,
                },
            );
        }
        if budget == u64::MAX {
            return Ok(());
        }
        // Demote LRU memory entries until memory fits the budget.
        while inner.mem_bytes > budget {
            let Some(victim) = lru_id(&inner, true) else {
                break;
            };
            let entry = inner.entries.remove(&victim).expect("lru entry");
            let Tier::Mem(vparts) = &entry.tier else {
                unreachable!("lru_id(mem) returned a disk entry");
            };
            inner.mem_bytes -= entry.bytes;
            let dir = self.dir(&mut inner)?;
            let (path, index, encoded) = spill_entry(&dir, victim, vparts)?;
            ctx.stats().record_dataset_spill(encoded);
            inner.disk_bytes += encoded;
            inner.entries.insert(
                victim,
                Entry {
                    tier: Tier::Disk { path, index },
                    bytes: encoded,
                    touched: entry.touched,
                },
            );
        }
        // Drop LRU disk entries until the disk ledger fits its cap.
        let disk_cap = budget.saturating_mul(DISK_BUDGET_FACTOR);
        while inner.disk_bytes > disk_cap {
            let Some(victim) = lru_id(&inner, false) else {
                break;
            };
            remove_entry(&mut inner, victim);
            inner.evicted.insert(victim);
            ctx.stats().record_dataset_eviction();
        }
        Ok(())
    }

    /// Drops an entry and clears its evicted mark — the explicit
    /// `unpersist`. A later force recomputes (uncounted) and may re-cache.
    pub(crate) fn remove(&self, id: u64) {
        let mut inner = self.inner.lock().expect("dataset cache lock");
        remove_entry(&mut inner, id);
        inner.evicted.remove(&id);
    }

    /// Slot-drop cleanup: same as [`DatasetCache::remove`] — the id can
    /// never be read again, so the entry and any mark are dead weight.
    fn forget(&self, id: u64) {
        self.remove(id);
    }

    /// The cache's temp directory, created on first spill.
    fn dir(&self, inner: &mut Inner) -> Result<PathBuf> {
        if let Some(dir) = &inner.dir {
            return Ok(dir.clone());
        }
        let dir = std::env::temp_dir().join(format!(
            "diablo-dataset-cache-{}-{}",
            std::process::id(),
            self.cache_id
        ));
        std::fs::create_dir_all(&dir).map_err(io_err)?;
        inner.dir = Some(dir.clone());
        Ok(dir)
    }
}

impl Drop for DatasetCache {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.lock() {
            if let Some(dir) = &inner.dir {
                let _ = std::fs::remove_dir_all(dir);
            }
        }
    }
}

/// The least-recently-touched entry id in one tier (`mem` selects the
/// memory tier). O(entries), like the serve result cache — entry counts
/// are session-variable counts, not row counts.
fn lru_id(inner: &Inner, mem: bool) -> Option<u64> {
    inner
        .entries
        .iter()
        .filter(|(_, e)| matches!(e.tier, Tier::Mem(_)) == mem)
        .min_by_key(|(_, e)| e.touched)
        .map(|(id, _)| *id)
}

/// Removes an entry, unwinding its ledger charge and deleting its file.
fn remove_entry(inner: &mut Inner, id: u64) {
    if let Some(entry) = inner.entries.remove(&id) {
        match &entry.tier {
            Tier::Mem(_) => inner.mem_bytes -= entry.bytes,
            Tier::Disk { path, .. } => {
                inner.disk_bytes -= entry.bytes;
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

/// Encodes every partition of an entry into one file, returning the
/// per-partition segment index and the encoded size.
fn spill_entry(dir: &Path, id: u64, parts: &[Vec<Value>]) -> Result<(PathBuf, Vec<Segment>, u64)> {
    let mut buf = Vec::new();
    let mut index = Vec::with_capacity(parts.len());
    for part in parts {
        let off = buf.len() as u64;
        for row in part {
            encode_value(row, &mut buf)?;
        }
        index.push((off, buf.len() as u64 - off, part.len()));
    }
    let path = dir.join(format!("ds-{id}.bin"));
    std::fs::write(&path, &buf).map_err(io_err)?;
    Ok((path, index, buf.len() as u64))
}

/// Decodes a disk entry back into partitions, segment by segment,
/// verifying per-partition row conservation against the spilled index.
fn read_entry(id: u64, path: &Path, index: &[Segment]) -> Result<Vec<Vec<Value>>> {
    let data = std::fs::read(path).map_err(io_err)?;
    let mut parts = Vec::with_capacity(index.len());
    for (p, &(off, len, rows)) in index.iter().enumerate() {
        let (start, end) = (off as usize, (off + len) as usize);
        let seg = data
            .get(start..end)
            .ok_or_else(|| RuntimeError::new("corrupt dataset cache file: segment out of range"))?;
        let mut cur = seg;
        let mut out = Vec::with_capacity(rows);
        while !cur.is_empty() {
            out.push(decode_value(&mut cur)?);
        }
        crate::verify::verify_cached_partition(id, p, rows, out.len())?;
        parts.push(out);
    }
    Ok(parts)
}

fn io_err(e: std::io::Error) -> RuntimeError {
    RuntimeError::new(format!("dataset cache I/O: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(2, 2)
    }

    fn rows(n: i64) -> Arc<Vec<Vec<Value>>> {
        Arc::new(vec![(0..n).map(Value::Long).collect(), Vec::new()])
    }

    #[test]
    fn unbounded_cache_keeps_everything_in_memory() {
        let c = ctx();
        let cache = DatasetCache::new(u64::MAX);
        cache.insert(1, rows(100), &c).unwrap();
        cache.insert(2, rows(100), &c).unwrap();
        assert!(cache.contains(1) && cache.contains(2));
        let got = cache.get(1, &c).unwrap().unwrap();
        assert_eq!(got[0].len(), 100);
        let snap = c.stats().snapshot();
        assert_eq!(snap.dataset_spills, 0);
        assert_eq!(snap.dataset_evictions, 0);
    }

    #[test]
    fn memory_pressure_demotes_lru_to_disk_byte_identically() {
        let c = ctx();
        let parts = rows(64);
        let budget = estimate_bytes(&parts) + 1;
        let cache = DatasetCache::new(budget);
        cache.insert(1, parts.clone(), &c).unwrap();
        // The second insert pushes entry 1 (LRU) to disk.
        cache.insert(2, rows(64), &c).unwrap();
        let snap = c.stats().snapshot();
        assert!(snap.dataset_spills >= 1, "{snap:?}");
        assert!(snap.dataset_spilled_bytes > 0);
        let got = cache.get(1, &c).unwrap().expect("still readable");
        assert_eq!(got.as_ref(), parts.as_ref(), "disk round-trip is exact");
    }

    #[test]
    fn disk_overflow_evicts_and_counts_recompute_on_next_read() {
        let c = ctx();
        // Budget so small everything demotes, disk cap 8× still tiny.
        let cache = DatasetCache::new(1);
        cache.insert(1, rows(64), &c).unwrap();
        cache.insert(2, rows(64), &c).unwrap();
        let snap = c.stats().snapshot();
        assert!(snap.dataset_evictions >= 1, "{snap:?}");
        // At least one id is gone; reading it counts one recompute.
        let victim = if cache.contains(1) { 2 } else { 1 };
        assert!(cache.get(victim, &c).unwrap().is_none());
        assert_eq!(c.stats().snapshot().dataset_recomputes, 1);
        // Reinserting clears the mark.
        cache.insert(victim, rows(64), &c).unwrap();
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = ctx();
        let cache = DatasetCache::new(0);
        cache.insert(7, rows(10), &c).unwrap();
        assert!(!cache.contains(7));
        assert_eq!(c.stats().snapshot().dataset_evictions, 1);
        assert!(cache.get(7, &c).unwrap().is_none());
        assert_eq!(c.stats().snapshot().dataset_recomputes, 1);
    }

    #[test]
    fn remove_clears_entry_and_mark() {
        let c = ctx();
        let cache = DatasetCache::new(0);
        cache.insert(3, rows(4), &c).unwrap();
        cache.remove(3);
        assert!(cache.get(3, &c).unwrap().is_none());
        assert_eq!(
            c.stats().snapshot().dataset_recomputes,
            0,
            "an unpersisted id is not a cache-pressure recompute"
        );
    }
}
