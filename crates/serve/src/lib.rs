//! # diablo-serve
//!
//! The multi-tenant serving layer over the DIABLO engine: everything
//! behind the `diablod` daemon and its clients.
//!
//! Where `diabloc run` is a cold, single-program process, this crate
//! keeps **one engine resident** — one morsel worker pool, one global
//! memory budget, one result cache — and multiplexes concurrent programs
//! onto it over a socket:
//!
//! * [`proto`] — the length-prefixed request/response wire protocol
//!   (program text + bindings in, rows/error + per-request stats out),
//!   reusing the engine's canonical binary [`Value`] codec.
//! * [`planhash`] — canonical plan hashing: program identity for the
//!   cache, computed over compiled target code so whitespace, comments,
//!   and input names vanish while semantics distinguish.
//! * [`cache`] — the plan-hash-keyed, byte-budgeted LRU result cache.
//! * [`admission`] — bounded in-flight executions with a deadline queue:
//!   overload means waiting, not OOM, and timeouts are clean errors.
//! * [`server`] — [`Server`]: accept loop, per-request
//!   [`Context::fork`](diablo_dataflow::Context::fork) tenancy, named
//!   shared datasets, the request lifecycle.
//! * [`client`] — [`Client`]: the blocking client `diabloc --connect`
//!   and the bench harness drive.
//!
//! The conformance contract: a program served by `diablod` returns
//! byte-identical outputs — and byte-identical *error messages*,
//! statement tags included — to a local single-shot `diabloc run` of
//! the same program, concurrency and caching notwithstanding.
//!
//! [`Value`]: diablo_runtime::Value

pub mod admission;
pub mod cache;
pub mod client;
pub mod planhash;
pub mod proto;
pub mod server;

pub use admission::{Admission, AdmissionPermit};
pub use cache::ResultCache;
pub use client::{Client, RunResult};
pub use planhash::{fold, plan_hash, rows_hash, value_hash};
pub use proto::{Output, Request, RequestStats, Response};
pub use server::{ServeConfig, Server};
