//! A blocking `diablod` client: one connection, request/response frames.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use diablo_runtime::Value;

use crate::proto::{read_frame, write_frame, Output, Request, RequestStats, Response};

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per connection); open several clients
/// for concurrency.
pub struct Client {
    conn: Box<dyn ReadWrite>,
}

trait ReadWrite: Read + Write + Send {}
impl ReadWrite for TcpStream {}
impl ReadWrite for UnixStream {}

/// A successful run as the client sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// `(name, output)` per visible program variable, sorted by name.
    pub outputs: Vec<(String, Output)>,
    /// Per-request statistics.
    pub stats: RequestStats,
    /// Advisory lint warnings (`warning[D0xx] line:col: …` one-liners).
    pub warnings: Vec<String>,
}

impl Client {
    /// Connects to `host:port` or `unix:/path` (the same scheme
    /// [`crate::Server::start`] binds).
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let conn: Box<dyn ReadWrite> = match addr.strip_prefix("unix:") {
            Some(path) => Box::new(UnixStream::connect(path)?),
            None => {
                let s = TcpStream::connect(addr)?;
                let _ = s.set_nodelay(true);
                Box::new(s)
            }
        };
        Ok(Client { conn })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, String> {
        let payload = req.encode().map_err(|e| e.to_string())?;
        write_frame(&mut self.conn, &payload).map_err(|e| format!("send: {e}"))?;
        let frame = read_frame(&mut self.conn)
            .map_err(|e| format!("receive: {e}"))?
            .ok_or_else(|| "server closed the connection".to_string())?;
        Response::decode(&frame).map_err(|e| e.to_string())
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected response to ping: {other:?}")),
        }
    }

    /// Runs a program. `Err` carries the server's error message —
    /// compile error, tagged runtime error, or admission timeout —
    /// verbatim, exactly what a local `diabloc run` would print.
    pub fn run(
        &mut self,
        program: &str,
        scalars: Vec<(String, Value)>,
        rows: Vec<(String, Vec<Value>)>,
        no_cache: bool,
    ) -> Result<RunResult, String> {
        let req = Request::Run {
            program: program.to_string(),
            scalars,
            rows,
            no_cache,
        };
        match self.request(&req)? {
            Response::RunOk {
                outputs,
                stats,
                warnings,
            } => Ok(RunResult {
                outputs,
                stats,
                warnings,
            }),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to run: {other:?}")),
        }
    }

    /// Registers rows server-side under `name`; returns the content
    /// fingerprint the server will use in cache keys.
    pub fn bind_dataset(&mut self, name: &str, rows: Vec<Value>) -> Result<u64, String> {
        let req = Request::BindDataset {
            name: name.to_string(),
            rows,
        };
        match self.request(&req)? {
            Response::BoundOk { fingerprint } => Ok(fingerprint),
            Response::Error { message } => Err(message),
            other => Err(format!("unexpected response to bind: {other:?}")),
        }
    }

    /// Fetches the server counters as `(name, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, String> {
        match self.request(&Request::Stats)? {
            Response::StatsOk { counters } => Ok(counters),
            other => Err(format!("unexpected response to stats: {other:?}")),
        }
    }

    /// Asks the server to exit.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(format!("unexpected response to shutdown: {other:?}")),
        }
    }
}
