//! Canonical plan hashing — the result cache's notion of program
//! identity.
//!
//! The hash is taken over the **compiled** program (the typed target
//! statements of [`CompiledProgram`]), not the source text, so every
//! surface difference the compiler already erases — whitespace, comments,
//! statement layout — vanishes before hashing: two texts that compile to
//! the same target code hash equal by construction, and the compiler's
//! fresh-name generator is deterministic, so its `v#N` temporaries never
//! destabilize the hash.
//!
//! On top of that, declared **input names are alpha-renamed to their
//! declaration position** (`in$0`, `in$1`, …): a program is the same
//! query whether its input is spelled `A` or `Points`, and the cache key
//! binds actual input *content* by fingerprint separately. Only inputs
//! the program never reassigns are renamed — a reassigned input is also
//! an output, and outputs are addressed by name in responses, so renaming
//! one would let two programs with differently-named results collide.
//!
//! Everything else is semantic and must distinguish: operators, constants
//! (hashed through the engine's canonical value encoding, so `0.0` and
//! `-0.0` differ exactly when their bits do), comprehension structure,
//! output variable names, and each input's **declared type** (same text
//! against a `vector[long]` vs a `vector[double]` is a different plan).
//!
//! The hash itself is FNV-1a 64 over a tagged byte stream — fully
//! deterministic across processes and platforms, unlike
//! `DefaultHasher`, whose seeds the standard library does not pin.

use std::collections::HashMap;

use diablo_comp::{CExpr, Comprehension, Pattern, Qual};
use diablo_core::{CompiledProgram, TStmt};
use diablo_runtime::Value;

/// Streaming FNV-1a 64 over a tagged byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x1_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for b in bs {
            self.byte(*b);
        }
    }

    fn u64(&mut self, n: u64) {
        self.bytes(&n.to_le_bytes());
    }

    /// A length-prefixed string, so `("ab","c")` and `("a","bc")` differ.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }
}

/// Folds a new component into an existing hash (order-sensitive) — how
/// the cache key chains the plan hash with input fingerprints.
pub fn fold(hash: u64, component: u64) -> u64 {
    let mut f = Fnv(hash);
    f.u64(component);
    f.0
}

/// FNV-1a 64 content hash of one value, via the same canonical shape the
/// engine's binary codec uses (doubles as raw bits; containers tagged and
/// length-prefixed). Infallible, unlike the wire codec: lengths are
/// hashed as `u64`.
pub fn value_hash(v: &Value) -> u64 {
    let mut f = Fnv::new();
    hash_value(&mut f, v);
    f.0
}

/// FNV-1a 64 content hash of a row slice, in order.
pub fn rows_hash(rows: &[Value]) -> u64 {
    let mut f = Fnv::new();
    f.u64(rows.len() as u64);
    for r in rows {
        hash_value(&mut f, r);
    }
    f.0
}

fn hash_value(f: &mut Fnv, v: &Value) {
    match v {
        Value::Unit => f.byte(0),
        Value::Bool(b) => {
            f.byte(1);
            f.byte(u8::from(*b));
        }
        Value::Long(n) => {
            f.byte(2);
            f.u64(*n as u64);
        }
        Value::Double(x) => {
            f.byte(3);
            f.u64(x.to_bits());
        }
        Value::Str(s) => {
            f.byte(4);
            f.str(s);
        }
        Value::Tuple(fs) => {
            f.byte(5);
            f.u64(fs.len() as u64);
            for x in fs.iter() {
                hash_value(f, x);
            }
        }
        Value::Record(fields) => {
            f.byte(6);
            f.u64(fields.len() as u64);
            for (n, x) in fields.iter() {
                f.str(n);
                hash_value(f, x);
            }
        }
        Value::Bag(items) => {
            f.byte(7);
            f.u64(items.len() as u64);
            for x in items.iter() {
                hash_value(f, x);
            }
        }
    }
}

/// True when any statement (re)assigns `name`.
fn writes(stmts: &[TStmt], name: &str) -> bool {
    stmts.iter().any(|s| match s {
        TStmt::Assign { name: n, .. } => n == name,
        TStmt::While { body, .. } => writes(body, name),
    })
}

/// The canonical plan hash of a compiled program. See the module docs
/// for what it normalizes (input names, surface syntax) and what it
/// distinguishes (everything semantic, including input types and output
/// names).
pub fn plan_hash(program: &CompiledProgram) -> u64 {
    // Positional aliases for never-reassigned inputs.
    let mut rename: HashMap<&str, String> = HashMap::new();
    let mut f = Fnv::new();
    f.u64(program.inputs.len() as u64);
    for (idx, (name, ty)) in program.inputs.iter().enumerate() {
        if !writes(&program.stmts, name) {
            rename.insert(name.as_str(), format!("in${idx}"));
        }
        // The declared type is part of the plan: hashing the stable Debug
        // rendering keeps this resilient to new Type variants.
        f.str(&format!("{ty:?}"));
    }
    hash_stmts(&mut f, &program.stmts, &rename);
    f.0
}

fn hash_stmts(f: &mut Fnv, stmts: &[TStmt], rename: &HashMap<&str, String>) {
    f.u64(stmts.len() as u64);
    for s in stmts {
        match s {
            TStmt::Assign {
                name,
                value,
                collection,
            } => {
                f.byte(1);
                f.str(name);
                f.byte(u8::from(*collection));
                hash_expr(f, value, rename);
            }
            TStmt::While { cond, body } => {
                f.byte(2);
                hash_expr(f, cond, rename);
                hash_stmts(f, body, rename);
            }
        }
    }
}

fn hash_var(f: &mut Fnv, name: &str, rename: &HashMap<&str, String>) {
    match rename.get(name) {
        Some(alias) => f.str(alias),
        None => f.str(name),
    }
}

fn hash_pattern(f: &mut Fnv, p: &Pattern) {
    match p {
        Pattern::Var(v) => {
            f.byte(1);
            f.str(v);
        }
        Pattern::Tuple(ps) => {
            f.byte(2);
            f.u64(ps.len() as u64);
            for p in ps {
                hash_pattern(f, p);
            }
        }
        Pattern::Wild => f.byte(3),
    }
}

fn hash_comp(f: &mut Fnv, c: &Comprehension, rename: &HashMap<&str, String>) {
    // Pattern variables never collide with input names (inputs that a
    // qualifier shadows would be surface-illegal), so one rename map
    // serves the whole tree.
    f.u64(c.quals.len() as u64);
    for q in &c.quals {
        match q {
            Qual::Gen(p, e) => {
                f.byte(1);
                hash_pattern(f, p);
                hash_expr(f, e, rename);
            }
            Qual::Let(p, e) => {
                f.byte(2);
                hash_pattern(f, p);
                hash_expr(f, e, rename);
            }
            Qual::Pred(e) => {
                f.byte(3);
                hash_expr(f, e, rename);
            }
            Qual::GroupBy(p, e) => {
                f.byte(4);
                hash_pattern(f, p);
                hash_expr(f, e, rename);
            }
        }
    }
    hash_expr(f, &c.head, rename);
}

fn hash_expr(f: &mut Fnv, e: &CExpr, rename: &HashMap<&str, String>) {
    match e {
        CExpr::Var(v) => {
            f.byte(1);
            hash_var(f, v, rename);
        }
        CExpr::Const(v) => {
            f.byte(2);
            hash_value(f, v);
        }
        CExpr::Bin(op, a, b) => {
            f.byte(3);
            f.str(&format!("{op:?}"));
            hash_expr(f, a, rename);
            hash_expr(f, b, rename);
        }
        CExpr::Un(op, a) => {
            f.byte(4);
            f.str(&format!("{op:?}"));
            hash_expr(f, a, rename);
        }
        CExpr::Call(func, args) => {
            f.byte(5);
            f.str(&format!("{func:?}"));
            f.u64(args.len() as u64);
            for a in args {
                hash_expr(f, a, rename);
            }
        }
        CExpr::Tuple(fs) => {
            f.byte(6);
            f.u64(fs.len() as u64);
            for x in fs {
                hash_expr(f, x, rename);
            }
        }
        CExpr::Record(fs) => {
            f.byte(7);
            f.u64(fs.len() as u64);
            for (n, x) in fs {
                f.str(n);
                hash_expr(f, x, rename);
            }
        }
        CExpr::Proj(x, field) => {
            f.byte(8);
            hash_expr(f, x, rename);
            f.str(field);
        }
        CExpr::Comp(c) => {
            f.byte(9);
            hash_comp(f, c, rename);
        }
        CExpr::Agg(op, x) => {
            f.byte(10);
            f.str(&format!("{op:?}"));
            hash_expr(f, x, rename);
        }
        CExpr::Merge {
            left,
            right,
            combine,
        } => {
            f.byte(11);
            match combine {
                None => f.byte(0),
                Some(op) => {
                    f.byte(1);
                    f.str(&format!("{op:?}"));
                }
            }
            hash_expr(f, left, rename);
            hash_expr(f, right, rename);
        }
        CExpr::Range(lo, hi) => {
            f.byte(12);
            hash_expr(f, lo, rename);
            hash_expr(f, hi, rename);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_core::compile;

    fn hash_of(src: &str) -> u64 {
        plan_hash(&compile(src).expect("compiles"))
    }

    const SUM: &str = r#"
        input V: vector[double];
        var sum: double = 0.0;
        for v in V do sum += v;
    "#;

    #[test]
    fn identical_text_hashes_equal() {
        assert_eq!(hash_of(SUM), hash_of(SUM));
    }

    #[test]
    fn whitespace_and_comments_vanish() {
        let noisy = r#"
            // summation over a vector
            input V: vector[double];

            var sum: double /* running total */ = 0.0;
            for v in V
                do sum += v;
        "#;
        assert_eq!(hash_of(SUM), hash_of(noisy));
    }

    #[test]
    fn renamed_input_hashes_equal() {
        let renamed = r#"
            input Readings: vector[double];
            var sum: double = 0.0;
            for v in Readings do sum += v;
        "#;
        assert_eq!(hash_of(SUM), hash_of(renamed));
    }

    #[test]
    fn renamed_output_hashes_differently() {
        let other = r#"
            input V: vector[double];
            var total: double = 0.0;
            for v in V do total += v;
        "#;
        assert_ne!(hash_of(SUM), hash_of(other), "outputs are named results");
    }

    #[test]
    fn different_constants_hash_differently() {
        let shifted = r#"
            input V: vector[double];
            var sum: double = 1.0;
            for v in V do sum += v;
        "#;
        assert_ne!(hash_of(SUM), hash_of(shifted));
    }

    #[test]
    fn different_input_type_hashes_differently() {
        let longs = r#"
            input V: vector[long];
            var sum: long = 0;
            for v in V do sum += v;
        "#;
        assert_ne!(hash_of(SUM), hash_of(longs));
    }

    #[test]
    fn value_hash_separates_double_bits() {
        assert_ne!(
            value_hash(&Value::Double(0.0)),
            value_hash(&Value::Double(-0.0))
        );
        assert_eq!(value_hash(&Value::Long(1)), value_hash(&Value::Long(1)));
        assert_ne!(value_hash(&Value::Long(1)), value_hash(&Value::Double(1.0)));
    }

    #[test]
    fn rows_hash_is_order_sensitive() {
        let a = vec![Value::Long(1), Value::Long(2)];
        let b = vec![Value::Long(2), Value::Long(1)];
        assert_ne!(rows_hash(&a), rows_hash(&b));
        assert_eq!(rows_hash(&a), rows_hash(&a.clone()));
    }

    #[test]
    fn fold_chains_are_order_sensitive() {
        assert_ne!(fold(fold(1, 2), 3), fold(fold(1, 3), 2));
    }
}
