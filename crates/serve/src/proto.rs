//! The `diablod` wire protocol.
//!
//! Both directions speak **length-prefixed frames**: a `u32` little-endian
//! payload length followed by that many bytes. Payloads are a one-byte
//! message tag followed by tag-specific fields; [`Value`]s travel in the
//! engine's canonical binary codec ([`diablo_dataflow::encode_value`] —
//! the same encoding spill files use, so doubles round-trip as raw bits
//! and responses are byte-identical to local runs). Strings are
//! `u32`-length-prefixed UTF-8; lists are a `u32` count followed by the
//! elements.
//!
//! The protocol is deliberately version-tagged: every frame in either
//! direction starts with [`MAGIC`] so a stray client speaking something
//! else fails loudly instead of hanging on a bogus length.

use std::io::{Read, Write};

use diablo_dataflow::{decode_value, encode_value};
use diablo_runtime::{RuntimeError, Value};

/// Result alias for protocol operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Protocol magic, the first byte of every payload (bumped on
/// incompatible changes).
pub const MAGIC: u8 = 0xD1;

/// Frames larger than this are rejected before allocation — a corrupt or
/// hostile length prefix must not OOM the server.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Compile and execute a program against the request's bindings plus
    /// the server's named datasets.
    Run {
        /// DIABLO source text.
        program: String,
        /// Scalar bindings, in binding order.
        scalars: Vec<(String, Value)>,
        /// Inline collection bindings as `(key, value)` rows.
        rows: Vec<(String, Vec<Value>)>,
        /// Bypass the result cache (used by cold-latency benchmarking;
        /// the run's result is still stored for later hits).
        no_cache: bool,
    },
    /// Register rows server-side under a name: subsequent `Run` requests
    /// see the dataset without re-shipping it, and every concurrent
    /// request shares one in-memory copy.
    BindDataset {
        /// Dataset name, matched against programs' `input` declarations.
        name: String,
        /// `(key, value)` rows.
        rows: Vec<Value>,
    },
    /// Server counters: cache hits/misses/evictions, admission gauges.
    Stats,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

/// One program variable in a `Run` response.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// A scalar binding.
    Scalar(Value),
    /// A collection binding, collected to sorted `(key, value)` rows.
    Rows(Vec<Value>),
}

/// Per-request execution statistics, returned with every successful run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequestStats {
    /// True when the response came from the plan-hash result cache.
    pub cache_hit: bool,
    /// Canonical plan hash of the compiled program (cache-key component).
    pub plan_hash: u64,
    /// Microseconds spent queued in admission control.
    pub queue_us: u64,
    /// Microseconds spent executing (0 on a cache hit).
    pub exec_us: u64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Liveness acknowledgement.
    Pong,
    /// A successful run: program variables (sorted by name, compiler
    /// temporaries hidden) plus per-request stats.
    RunOk {
        /// `(name, output)` per visible program variable.
        outputs: Vec<(String, Output)>,
        /// Per-request statistics.
        stats: RequestStats,
        /// Program lint warnings (compact `warning[D0xx] line:col: …`
        /// one-liners), in emission order. Advisory only — the run
        /// succeeded; clients print them to stderr.
        warnings: Vec<String>,
    },
    /// Any failure: compile error, runtime error (message carries the
    /// `[sN:var]` statement tag), admission timeout.
    Error {
        /// Human-readable message, identical to what `diabloc run` would
        /// print locally for the same failure.
        message: String,
    },
    /// Dataset registered; the value is its content fingerprint.
    BoundOk {
        /// FNV-1a 64 fingerprint of the registered rows.
        fingerprint: u64,
    },
    /// Server counters as `(name, value)` pairs.
    StatsOk {
        /// Counter name/value pairs, in a stable order.
        counters: Vec<(String, u64)>,
    },
    /// Shutdown acknowledged; the server exits after this frame.
    ShuttingDown,
}

// ------------------------------------------------------------ primitives

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<()> {
    let n = u32::try_from(s.len())
        .map_err(|_| RuntimeError::new("serve protocol: string exceeds the u32 wire format"))?;
    put_u32(out, n);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_count(out: &mut Vec<u8>, n: usize) -> Result<()> {
    let n = u32::try_from(n)
        .map_err(|_| RuntimeError::new("serve protocol: list exceeds the u32 wire format"))?;
    put_u32(out, n);
    Ok(())
}

fn put_rows(out: &mut Vec<u8>, rows: &[Value]) -> Result<()> {
    put_count(out, rows.len())?;
    for r in rows {
        encode_value(r, out)?;
    }
    Ok(())
}

fn corrupt() -> RuntimeError {
    RuntimeError::new("serve protocol: corrupt frame")
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(corrupt());
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().expect("4")))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().expect("8")))
}

fn take_str(buf: &mut &[u8]) -> Result<String> {
    let n = take_u32(buf)? as usize;
    let bytes = take(buf, n)?;
    Ok(std::str::from_utf8(bytes)
        .map_err(|_| corrupt())?
        .to_string())
}

fn take_rows(buf: &mut &[u8]) -> Result<Vec<Value>> {
    let n = take_u32(buf)? as usize;
    let mut rows = Vec::with_capacity(n.min(buf.len()));
    for _ in 0..n {
        rows.push(decode_value(buf)?);
    }
    Ok(rows)
}

// -------------------------------------------------------------- encoding

impl Request {
    /// Encodes the request payload (without the frame length).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = vec![MAGIC];
        match self {
            Request::Ping => out.push(0),
            Request::Run {
                program,
                scalars,
                rows,
                no_cache,
            } => {
                out.push(1);
                put_str(&mut out, program)?;
                put_count(&mut out, scalars.len())?;
                for (n, v) in scalars {
                    put_str(&mut out, n)?;
                    encode_value(v, &mut out)?;
                }
                put_count(&mut out, rows.len())?;
                for (n, r) in rows {
                    put_str(&mut out, n)?;
                    put_rows(&mut out, r)?;
                }
                out.push(u8::from(*no_cache));
            }
            Request::BindDataset { name, rows } => {
                out.push(2);
                put_str(&mut out, name)?;
                put_rows(&mut out, rows)?;
            }
            Request::Stats => out.push(3),
            Request::Shutdown => out.push(4),
        }
        Ok(out)
    }

    /// Decodes a request payload.
    pub fn decode(mut buf: &[u8]) -> Result<Request> {
        let buf = &mut buf;
        if *take(buf, 1)?.first().expect("1") != MAGIC {
            return Err(RuntimeError::new(
                "serve protocol: bad magic (client/server version mismatch?)",
            ));
        }
        let tag = *take(buf, 1)?.first().expect("1");
        Ok(match tag {
            0 => Request::Ping,
            1 => {
                let program = take_str(buf)?;
                let n = take_u32(buf)? as usize;
                let mut scalars = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    let name = take_str(buf)?;
                    scalars.push((name, decode_value(buf)?));
                }
                let n = take_u32(buf)? as usize;
                let mut rows = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    let name = take_str(buf)?;
                    rows.push((name, take_rows(buf)?));
                }
                let no_cache = take(buf, 1)?[0] != 0;
                Request::Run {
                    program,
                    scalars,
                    rows,
                    no_cache,
                }
            }
            2 => Request::BindDataset {
                name: take_str(buf)?,
                rows: take_rows(buf)?,
            },
            3 => Request::Stats,
            4 => Request::Shutdown,
            _ => return Err(corrupt()),
        })
    }
}

impl Response {
    /// Encodes the response payload (without the frame length).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = vec![MAGIC];
        match self {
            Response::Pong => out.push(0),
            Response::RunOk {
                outputs,
                stats,
                warnings,
            } => {
                out.push(1);
                put_count(&mut out, outputs.len())?;
                for (name, o) in outputs {
                    put_str(&mut out, name)?;
                    match o {
                        Output::Scalar(v) => {
                            out.push(0);
                            encode_value(v, &mut out)?;
                        }
                        Output::Rows(rows) => {
                            out.push(1);
                            put_rows(&mut out, rows)?;
                        }
                    }
                }
                out.push(u8::from(stats.cache_hit));
                put_u64(&mut out, stats.plan_hash);
                put_u64(&mut out, stats.queue_us);
                put_u64(&mut out, stats.exec_us);
                put_count(&mut out, warnings.len())?;
                for w in warnings {
                    put_str(&mut out, w)?;
                }
            }
            Response::Error { message } => {
                out.push(2);
                put_str(&mut out, message)?;
            }
            Response::BoundOk { fingerprint } => {
                out.push(3);
                put_u64(&mut out, *fingerprint);
            }
            Response::StatsOk { counters } => {
                out.push(4);
                put_count(&mut out, counters.len())?;
                for (n, v) in counters {
                    put_str(&mut out, n)?;
                    put_u64(&mut out, *v);
                }
            }
            Response::ShuttingDown => out.push(5),
        }
        Ok(out)
    }

    /// Decodes a response payload.
    pub fn decode(mut buf: &[u8]) -> Result<Response> {
        let buf = &mut buf;
        if *take(buf, 1)?.first().expect("1") != MAGIC {
            return Err(RuntimeError::new(
                "serve protocol: bad magic (client/server version mismatch?)",
            ));
        }
        let tag = *take(buf, 1)?.first().expect("1");
        Ok(match tag {
            0 => Response::Pong,
            1 => {
                let n = take_u32(buf)? as usize;
                let mut outputs = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    let name = take_str(buf)?;
                    let kind = take(buf, 1)?[0];
                    let o = match kind {
                        0 => Output::Scalar(decode_value(buf)?),
                        1 => Output::Rows(take_rows(buf)?),
                        _ => return Err(corrupt()),
                    };
                    outputs.push((name, o));
                }
                let cache_hit = take(buf, 1)?[0] != 0;
                let stats = RequestStats {
                    cache_hit,
                    plan_hash: take_u64(buf)?,
                    queue_us: take_u64(buf)?,
                    exec_us: take_u64(buf)?,
                };
                let n = take_u32(buf)? as usize;
                let mut warnings = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    warnings.push(take_str(buf)?);
                }
                Response::RunOk {
                    outputs,
                    stats,
                    warnings,
                }
            }
            2 => Response::Error {
                message: take_str(buf)?,
            },
            3 => Response::BoundOk {
                fingerprint: take_u64(buf)?,
            },
            4 => {
                let n = take_u32(buf)? as usize;
                let mut counters = Vec::with_capacity(n.min(buf.len()));
                for _ in 0..n {
                    let name = take_str(buf)?;
                    counters.push((name, take_u64(buf)?));
                }
                Response::StatsOk { counters }
            }
            5 => Response::ShuttingDown,
            _ => return Err(corrupt()),
        })
    }
}

// --------------------------------------------------------------- framing

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let n = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame exceeds u32 length")
    })?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF
/// (the peer closed between frames).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {n} exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; n as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = req.encode().unwrap();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = resp.encode().unwrap();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Stats);
        roundtrip_req(Request::Shutdown);
        roundtrip_req(Request::Run {
            program: "var x: long = 1;".into(),
            scalars: vec![("n".into(), Value::Long(7))],
            rows: vec![(
                "V".into(),
                vec![Value::pair(Value::Long(0), Value::Double(0.5))],
            )],
            no_cache: true,
        });
        roundtrip_req(Request::BindDataset {
            name: "points".into(),
            rows: vec![Value::pair(
                Value::Long(1),
                Value::tuple(vec![Value::Double(1.0), Value::Double(2.0)]),
            )],
        });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::ShuttingDown);
        roundtrip_resp(Response::Error {
            message: "[s2:C] boom".into(),
        });
        roundtrip_resp(Response::BoundOk {
            fingerprint: 0xDEAD_BEEF,
        });
        roundtrip_resp(Response::StatsOk {
            counters: vec![("cache_hits".into(), 3), ("cache_misses".into(), 1)],
        });
        roundtrip_resp(Response::RunOk {
            outputs: vec![
                ("sum".into(), Output::Scalar(Value::Double(4950.0))),
                (
                    "C".into(),
                    Output::Rows(vec![Value::pair(Value::str("a"), Value::Long(3))]),
                ),
            ],
            stats: RequestStats {
                cache_hit: true,
                plan_hash: 42,
                queue_us: 10,
                exec_us: 0,
            },
            warnings: vec![
                "warning[D020] 3:14: update of `C` compiles to a group-by shuffle".into(),
            ],
        });
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Request::Ping.encode().unwrap();
        bytes[0] = 0x00;
        let err = Request::decode(&bytes).unwrap_err();
        assert!(err.message.contains("bad magic"), "{err}");
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversized_frame_length_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
