//! The `diablod` server: connection handling, request execution,
//! caching, and admission.
//!
//! One [`Server`] owns one **base engine context**. Every `Run` request
//! executes on a [`Context::fork`] of it — a tenant context that shares
//! the parent's morsel worker pool and effective settings (backend,
//! memory budget, ordered routing) but has private statistics and
//! statement labels, so concurrent requests never interleave each
//! other's `sN:var` error tags. Named datasets registered with
//! `BindDataset` are held once as `Arc`ed partitions; every request
//! wraps the same allocation zero-copy.
//!
//! ## Request lifecycle
//!
//! ```text
//! compile ──▶ plan hash ──▶ cache key = fold(hash, input fingerprints)
//!   │                            │
//!   │                       hit? ──▶ respond from cache (no admission)
//!   ▼                            ▼ miss
//! coalesce (identical run already in flight? wait for its result) ──▶
//! admission (bounded in-flight, deadline queue) ──▶ fork + run ──▶
//!   cache the outputs ──▶ respond
//! ```
//!
//! Cache hits bypass admission entirely — they do no engine work, so
//! making them queue behind executions would be latency for nothing.
//!
//! **Request coalescing**: when several requests miss on the *same*
//! cache key concurrently, only the first one (the leader) executes;
//! the rest wait for the leader's result and serve it as a cache hit.
//! Without this, a burst of identical requests — the thundering-herd
//! shape of any cache in front of slow work — would run the same
//! program once per request, occupying admission slots with duplicate
//! work. A leader error propagates to every waiter (and is never
//! cached); `no_cache` requests bypass coalescing like they bypass the
//! cache.
//!
//! Compile errors, runtime errors (message identical to a local
//! `diabloc run`, including the statement tag), and admission timeouts
//! all travel back as [`Response::Error`]; a connection is never dropped
//! in response to a well-formed frame.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use diablo_core::compile;
use diablo_dataflow::{Context, Dataset};
use diablo_exec::Session;
use diablo_runtime::Value;

use crate::admission::Admission;
use crate::cache::{CachedRun, ResultCache};
use crate::planhash::{fold, plan_hash, rows_hash, value_hash};
use crate::proto::{read_frame, write_frame, Output, Request, RequestStats, Response};

/// Serving policy knobs (engine shape lives on the [`Context`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently executing requests; excess requests queue.
    pub max_inflight: usize,
    /// How long a queued request may wait before an admission error.
    pub queue_deadline: Duration,
    /// Result-cache byte budget (0 disables caching).
    pub cache_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_inflight: 4,
            queue_deadline: Duration::from_secs(10),
            cache_budget: 64 << 20,
        }
    }
}

/// A named server-side dataset: shared partitions plus the content
/// fingerprint that versions it in cache keys.
struct NamedData {
    parts: Arc<Vec<Vec<Value>>>,
    fingerprint: u64,
}

/// One in-flight execution of a cache key: the leader runs the program;
/// identical concurrent misses wait on `cv` until `done` holds the
/// leader's result — success or error — and share it.
struct InflightRun {
    done: Mutex<Option<std::result::Result<Arc<CachedRun>, String>>>,
    cv: Condvar,
}

struct Shared {
    ctx: Context,
    /// The resolved listen address (used to self-nudge on shutdown).
    addr: String,
    queue_deadline: Duration,
    cache: ResultCache,
    admission: Admission,
    datasets: RwLock<HashMap<String, NamedData>>,
    /// Cache keys currently executing, for request coalescing.
    inflight: Mutex<HashMap<u64, Arc<InflightRun>>>,
    /// Requests served by waiting on an identical in-flight execution.
    coalesced: AtomicU64,
    shutdown: AtomicBool,
    requests: AtomicU64,
}

/// The two listener flavors behind one address scheme: `unix:/path`
/// listens on a Unix domain socket, anything else is a TCP `host:port`.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, String),
}

/// A boxed duplex byte stream (TCP or Unix).
trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
impl Conn for UnixStream {}

/// A running server: accepting connections on a background thread.
pub struct Server {
    shared: Arc<Shared>,
    addr: String,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (`host:port`, with port 0 for an ephemeral port, or
    /// `unix:/path`) and starts accepting connections.
    pub fn start(addr: &str, ctx: Context, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = match addr.strip_prefix("unix:") {
            Some(path) => {
                // A stale socket file from a dead server would fail the
                // bind; replacing it is the standard daemon idiom.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?, path.to_string())
            }
            None => Listener::Tcp(TcpListener::bind(addr)?),
        };
        let actual = match &listener {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            Listener::Unix(_, path) => format!("unix:{path}"),
        };
        let shared = Arc::new(Shared {
            cache: ResultCache::new(cfg.cache_budget),
            admission: Admission::new(cfg.max_inflight),
            queue_deadline: cfg.queue_deadline,
            ctx,
            addr: actual.clone(),
            datasets: RwLock::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let accept = thread::Builder::new()
            .name("diablod-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            addr: actual,
            accept: Some(accept),
        })
    }

    /// The bound address, with any ephemeral port resolved (and the
    /// `unix:` prefix preserved) — pass this to [`crate::Client`].
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True once a `Shutdown` request has been received.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the accept loop to exit (it exits after a `Shutdown`
    /// request). Call after a client sent `Shutdown` — or use
    /// [`Server::stop`] to do both.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Stops the server from the owning process: marks shutdown, nudges
    /// the accept loop with a throwaway connection, and joins it.
    pub fn stop(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        nudge(&self.addr);
        self.join();
    }
}

/// Wakes a blocked `accept` by making (and dropping) a connection.
fn nudge(addr: &str) {
    match addr.strip_prefix("unix:") {
        Some(path) => drop(UnixStream::connect(path)),
        None => drop(TcpStream::connect(addr)),
    }
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn: Box<dyn Conn> = match &listener {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    let _ = s.set_nodelay(true);
                    Box::new(s)
                }
                Err(_) => continue,
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Box::new(s),
                Err(_) => continue,
            },
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let conn_shared = shared.clone();
        let _ = thread::Builder::new()
            .name("diablod-conn".into())
            .spawn(move || handle_conn(conn, conn_shared));
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
}

fn handle_conn(mut conn: Box<dyn Conn>, shared: Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                handle_request(req, &shared)
            }
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        let closing = matches!(response, Response::ShuttingDown);
        let bytes = match response.encode() {
            Ok(b) => b,
            Err(e) => Response::Error {
                message: e.to_string(),
            }
            .encode()
            .expect("error responses encode"),
        };
        if write_frame(&mut conn, &bytes).is_err() {
            return;
        }
        if closing {
            shared.shutdown.store(true, Ordering::SeqCst);
            // The accept loop is likely blocked in accept(); a throwaway
            // self-connection is the portable way to unblock it.
            nudge(&shared.addr);
            return;
        }
    }
}

fn handle_request(req: Request, shared: &Arc<Shared>) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::ShuttingDown,
        Request::Stats => Response::StatsOk {
            counters: stat_counters(shared),
        },
        Request::BindDataset { name, rows } => {
            let fingerprint = rows_hash(&rows);
            let parts = partition_rows(rows, shared.ctx.partitions());
            shared.datasets.write().expect("datasets lock").insert(
                name,
                NamedData {
                    parts: Arc::new(parts),
                    fingerprint,
                },
            );
            Response::BoundOk { fingerprint }
        }
        Request::Run {
            program,
            scalars,
            rows,
            no_cache,
        } => handle_run(&program, scalars, rows, no_cache, shared),
    }
}

/// Chunks rows into `p` partitions, mirroring `Dataset::from_vec` so a
/// server-held dataset scans exactly like an inline-bound one.
fn partition_rows(rows: Vec<Value>, p: usize) -> Vec<Vec<Value>> {
    let chunk = rows.len().div_ceil(p).max(1);
    let mut parts = Vec::with_capacity(p);
    let mut it = rows.into_iter();
    for _ in 0..p {
        parts.push(it.by_ref().take(chunk).collect());
    }
    parts
}

fn stat_counters(shared: &Arc<Shared>) -> Vec<(String, u64)> {
    let (entries, bytes) = shared.cache.occupancy();
    vec![
        ("requests".into(), shared.requests.load(Ordering::Relaxed)),
        ("cache_hits".into(), shared.cache.hits()),
        ("cache_misses".into(), shared.cache.misses()),
        ("cache_evictions".into(), shared.cache.evictions()),
        ("cache_entries".into(), entries),
        ("cache_bytes".into(), bytes),
        ("coalesced".into(), shared.coalesced.load(Ordering::Relaxed)),
        ("admitted".into(), shared.admission.admitted()),
        ("admission_timeouts".into(), shared.admission.timed_out()),
        ("peak_queued".into(), shared.admission.peak_queued()),
        (
            "max_inflight".into(),
            shared.admission.max_inflight() as u64,
        ),
        (
            "datasets".into(),
            shared.datasets.read().expect("datasets lock").len() as u64,
        ),
    ]
}

fn handle_run(
    program: &str,
    scalars: Vec<(String, Value)>,
    rows: Vec<(String, Vec<Value>)>,
    no_cache: bool,
    shared: &Arc<Shared>,
) -> Response {
    // The multi-error front end: a clean program yields the typed form
    // (needed for linting) alongside the compiled one; a faulty program
    // reports the first error with the same message a local `diabloc run`
    // prints for it.
    let mut diags = diablo_diag::Diagnostics::new();
    let (tp, compiled) = match diablo_core::compile_multi(program, &mut diags) {
        Some(pair) => pair,
        None => {
            return Response::Error {
                message: match compile(program) {
                    Err(e) => e.to_string(),
                    Ok(_) => "compile failed".to_string(),
                },
            }
        }
    };
    // Advisory lints ride along with every successful run (cache hits
    // included — they depend only on the program text, not the data).
    let warnings: Vec<String> = diablo_core::lint_program(&tp, &compiled)
        .iter()
        .map(diablo_diag::Diagnostic::one_line)
        .collect();
    let hash = plan_hash(&compiled);

    // Cache key: the plan hash chained with one fingerprint per declared
    // input, in declaration order. Inline bindings hash their content;
    // server-side datasets contribute their registration fingerprint
    // (same hash as inline rows of identical content, so where the data
    // lives does not split the cache); a missing input folds a marker —
    // the run will fail identically either way, and errors are never
    // cached.
    let datasets = shared.datasets.read().expect("datasets lock");
    let mut key = hash;
    for (name, _) in &compiled.inputs {
        key = if let Some((_, v)) = scalars.iter().find(|(n, _)| n == name) {
            fold(key, value_hash(v))
        } else if let Some((_, r)) = rows.iter().find(|(n, _)| n == name) {
            fold(key, rows_hash(r))
        } else if let Some(d) = datasets.get(name) {
            fold(key, d.fingerprint)
        } else {
            fold(key, 0)
        };
    }

    if !no_cache {
        if let Some(cached) = shared.cache.get(key) {
            return Response::RunOk {
                outputs: cached.outputs.clone(),
                stats: RequestStats {
                    cache_hit: true,
                    plan_hash: hash,
                    queue_us: 0,
                    exec_us: 0,
                },
                warnings,
            };
        }
    } else {
        // A bypassed lookup still counts as a miss in the counters: the
        // hit ratio should reflect what the cache *could* have served.
        let _ = shared.cache.get(u64::MAX ^ key);
    }

    // Request coalescing: if an identical run (same key) is already
    // executing, wait for its result instead of executing a duplicate.
    // The first miss registers itself as the leader; `no_cache` requests
    // bypass coalescing the way they bypass the cache.
    let leading = if no_cache {
        None
    } else {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        if let Some(run) = inflight.get(&key) {
            let run = run.clone();
            drop(inflight);
            drop(datasets);
            shared.coalesced.fetch_add(1, Ordering::Relaxed);
            let waited = Instant::now();
            let mut done = run.done.lock().expect("inflight result lock");
            while done.is_none() {
                done = run.cv.wait(done).expect("inflight result lock");
            }
            return match done.as_ref().expect("loop exits on Some") {
                Ok(cached) => Response::RunOk {
                    outputs: cached.outputs.clone(),
                    stats: RequestStats {
                        cache_hit: true,
                        plan_hash: hash,
                        queue_us: waited.elapsed().as_micros() as u64,
                        exec_us: 0,
                    },
                    warnings,
                },
                // A leader error reaches every waiter — re-running the
                // same program against the same inputs would fail the
                // same way, at full execution cost per waiter.
                Err(message) => Response::Error {
                    message: message.clone(),
                },
            };
        }
        // Double-check the result cache under the inflight lock: a
        // leader settles by caching its result and THEN deregistering,
        // so "cache miss, then no inflight entry" can also mean the
        // leader finished in between — its result is in the cache now.
        // Without this re-probe, that interleaving would execute the
        // identical request a second time.
        if let Some(cached) = shared.cache.peek(key) {
            return Response::RunOk {
                outputs: cached.outputs.clone(),
                stats: RequestStats {
                    cache_hit: true,
                    plan_hash: hash,
                    queue_us: 0,
                    exec_us: 0,
                },
                warnings,
            };
        }
        let run = Arc::new(InflightRun {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        inflight.insert(key, run.clone());
        Some(run)
    };
    // Publishes the leader's outcome: deregisters the key (later misses
    // start fresh — on success they hit the result cache anyway) and
    // wakes every waiter. Must run on EVERY exit path below, or waiters
    // sleep forever.
    let settle = |result: std::result::Result<Arc<CachedRun>, String>| {
        if let Some(run) = &leading {
            shared.inflight.lock().expect("inflight lock").remove(&key);
            *run.done.lock().expect("inflight result lock") = Some(result);
            run.cv.notify_all();
        }
    };

    let permit = match shared.admission.acquire(shared.queue_deadline) {
        Ok(p) => p,
        Err(message) => {
            settle(Err(message.clone()));
            return Response::Error { message };
        }
    };

    let started = Instant::now();
    let tenant = shared.ctx.fork();
    let mut session = Session::new(tenant.clone());
    for (name, v) in scalars {
        session.bind_scalar(&name, v);
    }
    let inline: Vec<&String> = rows.iter().map(|(n, _)| n).collect();
    for (name, r) in &rows {
        session.bind_input(name, r.clone());
    }
    for (name, _) in &compiled.inputs {
        if inline.contains(&name) || session.binding(name).is_some() {
            continue;
        }
        if let Some(d) = datasets.get(name) {
            session.bind_dataset(
                name,
                Dataset::from_shared_parts(tenant.clone(), d.parts.clone()),
            );
        }
    }
    drop(datasets);

    if let Err(e) = session.run(&compiled) {
        drop(permit);
        let message = e.to_string();
        settle(Err(message.clone()));
        return Response::Error { message };
    }

    let mut outputs = Vec::new();
    let mut names: Vec<(String, bool)> = compiled
        .var_types
        .iter()
        .filter(|(n, _)| !n.contains('#'))
        .map(|(n, t)| (n.clone(), t.is_collection()))
        .collect();
    names.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, is_collection) in names {
        if is_collection {
            if let Some(rows) = session.collect(&name) {
                outputs.push((name, Output::Rows(rows)));
            }
        } else if let Some(v) = session.scalar(&name) {
            outputs.push((name, Output::Scalar(v)));
        }
    }
    let exec_us = started.elapsed().as_micros() as u64;
    let queue_us = permit.queue_us;
    drop(permit);

    let cached = shared.cache.put(key, outputs);
    settle(Ok(cached.clone()));
    Response::RunOk {
        outputs: cached.outputs.clone(),
        stats: RequestStats {
            cache_hit: false,
            plan_hash: hash,
            queue_us,
            exec_us,
        },
        warnings,
    }
}
