//! The plan-hash-keyed LRU result cache.
//!
//! Keys are the 64-bit chain `fold(plan_hash, input fingerprints…)`
//! built by the server (see [`crate::planhash`]); values are a complete
//! response payload — every visible program variable of a finished run.
//! Entries are charged their estimated payload size
//! ([`diablo_runtime::size`]) against a byte budget; inserting past the
//! budget evicts least-recently-used entries first, and an entry larger
//! than the whole budget is simply not cached (the run still happened —
//! caching is an optimization, never a correctness gate).
//!
//! Reads and writes take one mutex; the critical sections are hash-map
//! lookups and `Arc` clones, never row copies, so the lock is invisible
//! next to program execution. A hit returns the `Arc` — concurrent
//! requests serving the same program share one allocation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use diablo_runtime::size::{serialized_size, slice_size};

use crate::proto::Output;

/// A cached run result: the full output set of one program execution.
#[derive(Debug)]
pub struct CachedRun {
    /// `(name, output)` per visible program variable, sorted by name.
    pub outputs: Vec<(String, Output)>,
}

/// Estimated payload bytes of an output set (the eviction currency).
fn outputs_size(outputs: &[(String, Output)]) -> u64 {
    outputs
        .iter()
        .map(|(n, o)| {
            n.len()
                + match o {
                    Output::Scalar(v) => serialized_size(v),
                    Output::Rows(rows) => slice_size(rows),
                }
        })
        .sum::<usize>() as u64
}

struct Entry {
    run: Arc<CachedRun>,
    bytes: u64,
    /// Last-touch tick for LRU ordering.
    touched: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    clock: u64,
    bytes: u64,
}

/// A byte-budgeted LRU map from cache key to run result.
pub struct ResultCache {
    budget: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Creates a cache holding at most `budget` estimated payload bytes.
    /// A zero budget disables caching entirely (every insert is a no-op).
    pub fn new(budget: u64) -> ResultCache {
        ResultCache {
            budget,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                bytes: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<CachedRun>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&key) {
            Some(e) => {
                e.touched = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.run.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Looks up a key, refreshing recency but **not** the hit/miss
    /// counters — for the server's coalescing double-check, which
    /// re-probes right after the counted [`ResultCache::get`] and would
    /// otherwise count every cold request as two misses.
    pub fn peek(&self, key: u64) -> Option<Arc<CachedRun>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(&key).map(|e| {
            e.touched = clock;
            e.run.clone()
        })
    }

    /// Inserts a run under a key, evicting LRU entries until it fits.
    /// Oversized results (bigger than the whole budget) are not cached.
    pub fn put(&self, key: u64, outputs: Vec<(String, Output)>) -> Arc<CachedRun> {
        let bytes = outputs_size(&outputs);
        let run = Arc::new(CachedRun { outputs });
        if bytes > self.budget {
            return run;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        while inner.bytes + bytes > self.budget {
            // O(n) LRU scan: entry counts are small (whole run results,
            // not rows), so a scan beats maintaining an ordered list.
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.touched) else {
                break;
            };
            let e = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= e.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                run: run.clone(),
                bytes,
                touched: clock,
            },
        );
        run
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte budget so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Current `(entries, bytes)` occupancy.
    pub fn occupancy(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache lock");
        (inner.map.len() as u64, inner.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_runtime::Value;

    fn run_of(n: i64, rows: usize) -> Vec<(String, Output)> {
        vec![(
            format!("v{n}"),
            Output::Rows(
                (0..rows)
                    .map(|i| Value::pair(Value::Long(i as i64), Value::Long(n)))
                    .collect(),
            ),
        )]
    }

    #[test]
    fn hit_returns_the_same_rows() {
        let cache = ResultCache::new(1 << 20);
        assert!(cache.get(7).is_none());
        let put = cache.put(7, run_of(1, 4));
        let got = cache.get(7).expect("hit");
        assert_eq!(got.outputs, put.outputs);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn budget_evicts_least_recently_used() {
        // Each entry is ~ 2 + 10*(2+8+8) = 182 bytes; budget fits two.
        let one = outputs_size(&run_of(0, 10));
        let cache = ResultCache::new(2 * one + 1);
        cache.put(1, run_of(1, 10));
        cache.put(2, run_of(2, 10));
        cache.get(1); // refresh 1: victim becomes 2
        cache.put(3, run_of(3, 10));
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.evictions(), 1);
        let (entries, bytes) = cache.occupancy();
        assert_eq!(entries, 2);
        assert!(bytes <= 2 * one + 1);
    }

    #[test]
    fn oversized_and_zero_budget_results_are_not_cached() {
        let cache = ResultCache::new(8);
        cache.put(1, run_of(1, 100));
        assert!(cache.get(1).is_none());
        let off = ResultCache::new(0);
        off.put(2, run_of(2, 1));
        assert!(off.get(2).is_none());
    }

    #[test]
    fn reinsert_replaces_without_double_charge() {
        let cache = ResultCache::new(1 << 20);
        cache.put(5, run_of(1, 10));
        cache.put(5, run_of(2, 10));
        let (entries, bytes) = cache.occupancy();
        assert_eq!(entries, 1);
        assert_eq!(bytes, outputs_size(&run_of(2, 10)));
    }
}
