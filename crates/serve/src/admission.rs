//! Admission control: a deadline-bounded counting semaphore.
//!
//! The server multiplexes every request onto one shared morsel pool under
//! one global memory budget; admitting unbounded concurrent executions
//! would multiply peak memory by the request count and defeat the budget.
//! Instead at most `max_inflight` requests execute at once; the rest
//! **queue** on a condvar with a deadline. A queued request that cannot
//! start before its deadline gets a clean admission error (never a
//! dropped connection), and under overload nothing OOMs — memory use is
//! `max_inflight × per-request budget`, regardless of offered load.
//!
//! Permits are RAII: dropping an [`AdmissionPermit`] releases the slot
//! and wakes the waiters, so an execution that panics or errors still
//! frees its slot.
//!
//! Dequeue is **FIFO by arrival**: each waiter takes a monotonically
//! increasing ticket and only the holder of the oldest ticket may take a
//! freed slot. A bare `notify_one` handoff let a late-arriving request
//! race an earlier one for the slot and starve it past its deadline;
//! with tickets, deadlines are missed oldest-last.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State {
    in_flight: usize,
    /// Arrival-ordered tickets of the requests currently queued.
    queue: VecDeque<u64>,
    /// The next ticket to hand out.
    next_ticket: u64,
}

struct Shared {
    max_inflight: usize,
    state: Mutex<State>,
    available: Condvar,
    admitted: AtomicU64,
    timed_out: AtomicU64,
    peak_queued: AtomicU64,
}

/// The admission gate; clone-free, shared behind an `Arc` by the server.
pub struct Admission {
    shared: Arc<Shared>,
}

/// An admitted execution slot; dropping it releases the slot.
pub struct AdmissionPermit {
    shared: Arc<Shared>,
    /// Microseconds this request waited in the queue before admission.
    pub queue_us: u64,
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("queue_us", &self.queue_us)
            .finish()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("admission lock");
        st.in_flight -= 1;
        drop(st);
        // Wake everyone: only the head-of-queue ticket may take the slot,
        // and notify_one could wake a younger waiter that would just go
        // back to sleep while the head slept on.
        self.shared.available.notify_all();
    }
}

impl Admission {
    /// A gate admitting at most `max_inflight` concurrent executions
    /// (clamped to at least 1 — a gate nothing can pass is a deadlock,
    /// not a policy).
    pub fn new(max_inflight: usize) -> Admission {
        Admission {
            shared: Arc::new(Shared {
                max_inflight: max_inflight.max(1),
                state: Mutex::new(State {
                    in_flight: 0,
                    queue: VecDeque::new(),
                    next_ticket: 0,
                }),
                available: Condvar::new(),
                admitted: AtomicU64::new(0),
                timed_out: AtomicU64::new(0),
                peak_queued: AtomicU64::new(0),
            }),
        }
    }

    /// Waits for a slot, at most `deadline`. `Ok` carries the RAII
    /// permit (with the observed queue delay); `Err` is the timeout
    /// message for the client.
    pub fn acquire(&self, deadline: Duration) -> Result<AdmissionPermit, String> {
        let started = Instant::now();
        let mut st = self.shared.state.lock().expect("admission lock");
        if st.in_flight >= self.shared.max_inflight || !st.queue.is_empty() {
            // Queue behind everyone already waiting — even when a slot is
            // technically free, jumping ahead of the queue would reorder
            // admissions behind the arrival order.
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push_back(ticket);
            self.shared
                .peak_queued
                .fetch_max(st.queue.len() as u64, Ordering::Relaxed);
            while st.in_flight >= self.shared.max_inflight || st.queue.front() != Some(&ticket) {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    st.queue.retain(|&t| t != ticket);
                    self.shared.timed_out.fetch_add(1, Ordering::Relaxed);
                    let msg = format!(
                        "admission queue deadline exceeded ({} ms): {} executions in flight",
                        deadline.as_millis(),
                        st.in_flight
                    );
                    drop(st);
                    // A timed-out head must pass the baton, or the queue
                    // behind it waits for the next permit drop.
                    self.shared.available.notify_all();
                    return Err(msg);
                }
                let (next, _) = self
                    .shared
                    .available
                    .wait_timeout(st, deadline - elapsed)
                    .expect("admission lock");
                st = next;
            }
            st.queue.pop_front();
            if st.in_flight + 1 < self.shared.max_inflight && !st.queue.is_empty() {
                // More slots remain: let the next ticket holder run too.
                self.shared.available.notify_all();
            }
        }
        st.in_flight += 1;
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit {
            shared: self.shared.clone(),
            queue_us: started.elapsed().as_micros() as u64,
        })
    }

    /// Executions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.shared.admitted.load(Ordering::Relaxed)
    }

    /// Requests that hit their queue deadline.
    pub fn timed_out(&self) -> u64 {
        self.shared.timed_out.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently queued requests.
    pub fn peak_queued(&self) -> u64 {
        self.shared.peak_queued.load(Ordering::Relaxed)
    }

    /// The configured concurrency bound.
    pub fn max_inflight(&self) -> usize {
        self.shared.max_inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn admits_up_to_the_bound_then_queues() {
        let gate = Arc::new(Admission::new(2));
        let a = gate.acquire(Duration::from_secs(1)).unwrap();
        let _b = gate.acquire(Duration::from_secs(1)).unwrap();
        let (tx, rx) = mpsc::channel();
        let g = gate.clone();
        let t = thread::spawn(move || {
            let p = g.acquire(Duration::from_secs(5)).unwrap();
            tx.send(()).unwrap();
            drop(p);
        });
        // The third acquire must be queued, not admitted.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(a);
        rx.recv_timeout(Duration::from_secs(5)).expect("admitted");
        t.join().unwrap();
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.timed_out(), 0);
        assert!(gate.peak_queued() >= 1);
    }

    #[test]
    fn deadline_expires_with_an_error() {
        let gate = Admission::new(1);
        let _held = gate.acquire(Duration::from_secs(1)).unwrap();
        let err = gate.acquire(Duration::from_millis(20)).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        assert_eq!(gate.timed_out(), 1);
    }

    #[test]
    fn dropped_permit_frees_the_slot() {
        let gate = Admission::new(1);
        drop(gate.acquire(Duration::from_secs(1)).unwrap());
        gate.acquire(Duration::from_millis(10))
            .expect("slot was released");
    }

    #[test]
    fn zero_bound_is_clamped_to_one() {
        let gate = Admission::new(0);
        gate.acquire(Duration::from_millis(10))
            .expect("clamped to 1");
    }

    #[test]
    fn queued_requests_admit_in_arrival_order() {
        // Regression: with a bare notify_one handoff, a late-arriving
        // request could take a freed slot ahead of an older waiter and
        // starve it past its deadline. Queue several waiters in a known
        // arrival order, release slots one at a time, and require
        // admissions to come back in exactly that order.
        let gate = Arc::new(Admission::new(1));
        let held = gate.acquire(Duration::from_secs(5)).unwrap();
        let (tx, rx) = mpsc::channel::<usize>();
        let mut threads = Vec::new();
        for i in 0..4 {
            let g = gate.clone();
            let tx = tx.clone();
            threads.push(thread::spawn(move || {
                let p = g.acquire(Duration::from_secs(30)).unwrap();
                tx.send(i).unwrap();
                // Hold briefly so admissions serialize through the gate.
                thread::sleep(Duration::from_millis(5));
                drop(p);
            }));
            // Wait until this waiter is visibly queued before spawning
            // the next, pinning the arrival order.
            let want = i as u64 + 1;
            while gate.peak_queued() < want {
                thread::sleep(Duration::from_millis(1));
            }
        }
        drop(held);
        let order: Vec<usize> = (0..4)
            .map(|_| rx.recv_timeout(Duration::from_secs(30)).expect("admitted"))
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(order, vec![0, 1, 2, 3], "FIFO by arrival");
        assert_eq!(gate.timed_out(), 0);
    }
}
