//! Admission control: a deadline-bounded counting semaphore.
//!
//! The server multiplexes every request onto one shared morsel pool under
//! one global memory budget; admitting unbounded concurrent executions
//! would multiply peak memory by the request count and defeat the budget.
//! Instead at most `max_inflight` requests execute at once; the rest
//! **queue** on a condvar with a deadline. A queued request that cannot
//! start before its deadline gets a clean admission error (never a
//! dropped connection), and under overload nothing OOMs — memory use is
//! `max_inflight × per-request budget`, regardless of offered load.
//!
//! Permits are RAII: dropping an [`AdmissionPermit`] releases the slot
//! and wakes one waiter, so an execution that panics or errors still
//! frees its slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State {
    in_flight: usize,
    queued: usize,
}

struct Shared {
    max_inflight: usize,
    state: Mutex<State>,
    available: Condvar,
    admitted: AtomicU64,
    timed_out: AtomicU64,
    peak_queued: AtomicU64,
}

/// The admission gate; clone-free, shared behind an `Arc` by the server.
pub struct Admission {
    shared: Arc<Shared>,
}

/// An admitted execution slot; dropping it releases the slot.
pub struct AdmissionPermit {
    shared: Arc<Shared>,
    /// Microseconds this request waited in the queue before admission.
    pub queue_us: u64,
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("queue_us", &self.queue_us)
            .finish()
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("admission lock");
        st.in_flight -= 1;
        drop(st);
        self.shared.available.notify_one();
    }
}

impl Admission {
    /// A gate admitting at most `max_inflight` concurrent executions
    /// (clamped to at least 1 — a gate nothing can pass is a deadlock,
    /// not a policy).
    pub fn new(max_inflight: usize) -> Admission {
        Admission {
            shared: Arc::new(Shared {
                max_inflight: max_inflight.max(1),
                state: Mutex::new(State {
                    in_flight: 0,
                    queued: 0,
                }),
                available: Condvar::new(),
                admitted: AtomicU64::new(0),
                timed_out: AtomicU64::new(0),
                peak_queued: AtomicU64::new(0),
            }),
        }
    }

    /// Waits for a slot, at most `deadline`. `Ok` carries the RAII
    /// permit (with the observed queue delay); `Err` is the timeout
    /// message for the client.
    pub fn acquire(&self, deadline: Duration) -> Result<AdmissionPermit, String> {
        let started = Instant::now();
        let mut st = self.shared.state.lock().expect("admission lock");
        if st.in_flight >= self.shared.max_inflight {
            st.queued += 1;
            self.shared
                .peak_queued
                .fetch_max(st.queued as u64, Ordering::Relaxed);
            while st.in_flight >= self.shared.max_inflight {
                let elapsed = started.elapsed();
                if elapsed >= deadline {
                    st.queued -= 1;
                    self.shared.timed_out.fetch_add(1, Ordering::Relaxed);
                    return Err(format!(
                        "admission queue deadline exceeded ({} ms): {} executions in flight",
                        deadline.as_millis(),
                        st.in_flight
                    ));
                }
                let (next, _) = self
                    .shared
                    .available
                    .wait_timeout(st, deadline - elapsed)
                    .expect("admission lock");
                st = next;
            }
            st.queued -= 1;
        }
        st.in_flight += 1;
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit {
            shared: self.shared.clone(),
            queue_us: started.elapsed().as_micros() as u64,
        })
    }

    /// Executions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.shared.admitted.load(Ordering::Relaxed)
    }

    /// Requests that hit their queue deadline.
    pub fn timed_out(&self) -> u64 {
        self.shared.timed_out.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently queued requests.
    pub fn peak_queued(&self) -> u64 {
        self.shared.peak_queued.load(Ordering::Relaxed)
    }

    /// The configured concurrency bound.
    pub fn max_inflight(&self) -> usize {
        self.shared.max_inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    #[test]
    fn admits_up_to_the_bound_then_queues() {
        let gate = Arc::new(Admission::new(2));
        let a = gate.acquire(Duration::from_secs(1)).unwrap();
        let _b = gate.acquire(Duration::from_secs(1)).unwrap();
        let (tx, rx) = mpsc::channel();
        let g = gate.clone();
        let t = thread::spawn(move || {
            let p = g.acquire(Duration::from_secs(5)).unwrap();
            tx.send(()).unwrap();
            drop(p);
        });
        // The third acquire must be queued, not admitted.
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        drop(a);
        rx.recv_timeout(Duration::from_secs(5)).expect("admitted");
        t.join().unwrap();
        assert_eq!(gate.admitted(), 3);
        assert_eq!(gate.timed_out(), 0);
        assert!(gate.peak_queued() >= 1);
    }

    #[test]
    fn deadline_expires_with_an_error() {
        let gate = Admission::new(1);
        let _held = gate.acquire(Duration::from_secs(1)).unwrap();
        let err = gate.acquire(Duration::from_millis(20)).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        assert_eq!(gate.timed_out(), 1);
    }

    #[test]
    fn dropped_permit_frees_the_slot() {
        let gate = Admission::new(1);
        drop(gate.acquire(Duration::from_secs(1)).unwrap());
        gate.acquire(Duration::from_millis(10))
            .expect("slot was released");
    }

    #[test]
    fn zero_bound_is_clamped_to_one() {
        let gate = Admission::new(0);
        gate.acquire(Duration::from_millis(10))
            .expect("clamped to 1");
    }
}
