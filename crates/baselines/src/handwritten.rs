//! Hand-written dataflow programs — the Appendix B "expert Spark" versions
//! of every Figure 3 benchmark, written directly against the engine.
//!
//! Inputs are the same `(key, value)` datasets the DIABLO versions consume
//! (the key is ignored where Spark would use a raw `RDD[T]`).
//!
//! Every public entry point returns **completed** work: dataset results
//! are materialized before returning (the engine is lazy up to and
//! including post-shuffle stages, and these functions are what the
//! benchmark harness times — a pending plan would silently fall out of
//! the measurement). Internal combinators stay lazy so chains still fuse.

use std::sync::Arc;

use diablo_dataflow::Dataset;
use diablo_runtime::{array::key_value, BinOp, RuntimeError, Value};

/// Result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;

/// Projects the value side of `(key, value)` rows (the `RDD[T]` view).
fn values(d: &Dataset) -> Result<Dataset> {
    d.map(|row| Ok(key_value(row)?.1))
}

fn add(a: &Value, b: &Value) -> Result<Value> {
    BinOp::Add.apply(a, b)
}

/// Conditional Sum: `V.filter(_ < 100).reduce(_ + _)`.
pub fn conditional_sum(v: &Dataset) -> Result<Value> {
    let vals = values(v)?;
    let filtered = vals.filter(|x| Ok(x.as_double().is_some_and(|d| d < 100.0)))?;
    Ok(filtered.reduce(add)?.unwrap_or(Value::Double(0.0)))
}

/// Equal: `V.map(_ == x).reduce(_ && _)`.
pub fn equal(v: &Dataset, x: &Value) -> Result<Value> {
    let x = x.clone();
    let eqs = values(v)?.map(move |w| Ok(Value::Bool(*w == x)))?;
    Ok(eqs
        .reduce(|a, b| BinOp::And.apply(a, b))?
        .unwrap_or(Value::Bool(true)))
}

/// String Match: does any element equal one of the three keys?
pub fn string_match(words: &Dataset) -> Result<Value> {
    let hits = values(words)?.map(|w| {
        let s = w.as_str().unwrap_or("");
        Ok(Value::Bool(s == "key1" || s == "key2" || s == "key3"))
    })?;
    Ok(hits
        .reduce(|a, b| BinOp::Or.apply(a, b))?
        .unwrap_or(Value::Bool(false)))
}

/// Word Count: `words.map((_, 1)).reduceByKey(_ + _)`.
pub fn word_count(words: &Dataset) -> Result<Dataset> {
    let pairs = values(words)?.map(|w| Ok(Value::pair(w.clone(), Value::Long(1))))?;
    pairs.reduce_by_key(add)?.materialize()
}

/// Histogram: `P.map(_.c).countByValue()` per RGB component.
pub fn histogram(p: &Dataset) -> Result<(Dataset, Dataset, Dataset)> {
    let count_component = |field: &'static str| -> Result<Dataset> {
        let keyed = values(p)?.map(move |pix| {
            let c = pix
                .field(field)
                .ok_or_else(|| RuntimeError::new("pixel field"))?
                .clone();
            Ok(Value::pair(c, Value::Long(1)))
        })?;
        keyed.reduce_by_key(add)?.materialize()
    };
    Ok((
        count_component("red")?,
        count_component("green")?,
        count_component("blue")?,
    ))
}

/// Linear Regression: the two-pass mean/moment computation of Appendix B.
/// Returns `(intercept, slope)`.
#[allow(clippy::type_complexity)]
pub fn linear_regression(p: &Dataset, n: i64) -> Result<(f64, f64)> {
    let pts = values(p)?;
    let sum_of = |f: Box<dyn Fn(&Value) -> Result<Value> + Send + Sync>| -> Result<f64> {
        let mapped = pts.map(move |v| f(v))?;
        Ok(mapped
            .reduce(add)?
            .and_then(|v| v.as_double())
            .unwrap_or(0.0))
    };
    let x = |v: &Value| v.field("_1").and_then(Value::as_double).unwrap_or(0.0);
    let y = |v: &Value| v.field("_2").and_then(Value::as_double).unwrap_or(0.0);
    let x_bar = sum_of(Box::new(move |v| Ok(Value::Double(x(v)))))? / n as f64;
    let y_bar = sum_of(Box::new(move |v| Ok(Value::Double(y(v)))))? / n as f64;
    let xx_bar = sum_of(Box::new(move |v| {
        Ok(Value::Double((x(v) - x_bar) * (x(v) - x_bar)))
    }))?;
    let xy_bar = sum_of(Box::new(move |v| {
        Ok(Value::Double((x(v) - x_bar) * (y(v) - y_bar)))
    }))?;
    let slope = xy_bar / xx_bar;
    let intercept = y_bar - slope * x_bar;
    Ok((intercept, slope))
}

/// Group-By: `V.map(v => (v.K, v.A)).reduceByKey(_ + _)`.
pub fn group_by(v: &Dataset) -> Result<Dataset> {
    let keyed = values(v)?.map(|r| {
        let k = r
            .field("K")
            .ok_or_else(|| RuntimeError::new("K field"))?
            .clone();
        let a = r
            .field("A")
            .ok_or_else(|| RuntimeError::new("A field"))?
            .clone();
        Ok(Value::pair(k, a))
    })?;
    keyed.reduce_by_key(add)?.materialize()
}

/// Matrix Addition: `M.join(N).mapValues(m + n)`.
pub fn matrix_addition(m: &Dataset, n: &Dataset) -> Result<Dataset> {
    let joined = m.join(n)?;
    joined
        .map(|row| {
            let (k, mn) = key_value(row)?;
            let fields = mn
                .as_tuple()
                .ok_or_else(|| RuntimeError::new("join pair"))?;
            Ok(Value::pair(k, add(&fields[0], &fields[1])?))
        })?
        .materialize()
}

/// Matrix Multiplication: the Appendix B map/join/map/reduceByKey plan.
pub fn matrix_multiplication(m: &Dataset, n: &Dataset) -> Result<Dataset> {
    // M: ((i, j), m) → (j, (i, m))
    let left = m.map(|row| {
        let (k, v) = key_value(row)?;
        let ij = k
            .as_tuple()
            .ok_or_else(|| RuntimeError::new("matrix key"))?;
        Ok(Value::pair(ij[1].clone(), Value::pair(ij[0].clone(), v)))
    })?;
    // N: ((i, j), n) → (i, (j, n))
    let right = n.map(|row| {
        let (k, v) = key_value(row)?;
        let ij = k
            .as_tuple()
            .ok_or_else(|| RuntimeError::new("matrix key"))?;
        Ok(Value::pair(ij[0].clone(), Value::pair(ij[1].clone(), v)))
    })?;
    // join on k → ((i, j), m * n) → reduceByKey(+)
    let products = left.join(&right)?.map(|row| {
        let (_, pair) = key_value(row)?;
        let sides = pair
            .as_tuple()
            .ok_or_else(|| RuntimeError::new("join pair"))?;
        let (im, jn) = (
            sides[0]
                .as_tuple()
                .ok_or_else(|| RuntimeError::new("left side"))?,
            sides[1]
                .as_tuple()
                .ok_or_else(|| RuntimeError::new("right side"))?,
        );
        Ok(Value::pair(
            Value::pair(im[0].clone(), jn[0].clone()),
            BinOp::Mul.apply(&im[1], &jn[1])?,
        ))
    })?;
    products.reduce_by_key(add)?.materialize()
}

/// PageRank: `links.join(ranks).flatMap(contributions).reduceByKey(+)` with
/// the damping update, per Appendix B.
pub fn pagerank(e: &Dataset, vertices: i64, num_steps: usize) -> Result<Dataset> {
    // links: i → bag of destinations (cached across iterations).
    let src_dst = e.map(|row| {
        let (k, _) = key_value(row)?;
        let ij = k.as_tuple().ok_or_else(|| RuntimeError::new("edge key"))?;
        Ok(Value::pair(ij[0].clone(), ij[1].clone()))
    })?;
    // `links` is reused every iteration (Spark would .cache() it); pin it
    // so the lazy grouping stage does not re-run per consumption.
    let links = src_dst.group_by_key()?.materialize()?;
    let init = 1.0 / vertices as f64;
    let mut ranks = links.map(move |row| {
        let (k, _) = key_value(row)?;
        Ok(Value::pair(k, Value::Double(init)))
    })?;
    for _ in 0..num_steps {
        let contribs = links.join(&ranks)?.flat_map(|row| {
            let (_, pair) = key_value(row)?;
            let sides = pair
                .as_tuple()
                .ok_or_else(|| RuntimeError::new("join pair"))?;
            let urls = sides[0]
                .as_bag()
                .ok_or_else(|| RuntimeError::new("links bag"))?;
            let rank = sides[1]
                .as_double()
                .ok_or_else(|| RuntimeError::new("rank"))?;
            let share = rank / urls.len() as f64;
            Ok(urls
                .iter()
                .map(|u| Value::pair(u.clone(), Value::Double(share)))
                .collect())
        })?;
        let summed = contribs.reduce_by_key(add)?;
        let nv = vertices as f64;
        ranks = summed.map(move |row| {
            let (k, v) = key_value(row)?;
            let r = v.as_double().unwrap_or(0.0);
            Ok(Value::pair(k, Value::Double(0.15 / nv + 0.85 * r)))
        })?;
    }
    ranks.materialize()
}

/// K-Means: broadcast the centroids, assign each point with a local argmin,
/// reduce per-centroid sums, recompute — the cheap plan of Appendix B.
/// Returns the final centroids.
pub fn kmeans(
    points: &Dataset,
    initial: &[(f64, f64)],
    num_steps: usize,
) -> Result<Vec<(f64, f64)>> {
    let pts = values(points)?;
    let mut centroids: Arc<Vec<(f64, f64)>> = Arc::new(initial.to_vec());
    for _ in 0..num_steps {
        let cents = Arc::clone(&centroids);
        // Note: a real Spark run would broadcast `cents`; sharing the Arc
        // plays the same role. The shuffle carries only per-centroid sums.
        let assigned = pts.map(move |p| {
            let xy = p.as_tuple().ok_or_else(|| RuntimeError::new("point"))?;
            let (x, y) = (
                xy[0].as_double().unwrap_or(0.0),
                xy[1].as_double().unwrap_or(0.0),
            );
            let mut best = 0usize;
            let mut best_d = f64::MAX;
            for (i, (cx, cy)) in cents.iter().enumerate() {
                let d = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            Ok(Value::pair(
                Value::Long(best as i64),
                Value::tuple(vec![Value::Double(x), Value::Double(y), Value::Long(1)]),
            ))
        })?;
        let sums = assigned.reduce_by_key(add)?;
        let mut next = centroids.as_ref().clone();
        for row in sums.collect() {
            let (k, acc) = key_value(&row)?;
            let idx = k.as_long().unwrap_or(0) as usize;
            let f = acc.as_tuple().ok_or_else(|| RuntimeError::new("acc"))?;
            let cnt = f[2].as_double().unwrap_or(1.0);
            next[idx] = (
                f[0].as_double().unwrap_or(0.0) / cnt,
                f[1].as_double().unwrap_or(0.0) / cnt,
            );
        }
        centroids = Arc::new(next);
    }
    Ok(centroids.as_ref().clone())
}

/// Transposes a sparse matrix dataset.
fn transpose(x: &Dataset) -> Result<Dataset> {
    x.map(|row| {
        let (k, v) = key_value(row)?;
        let ij = k
            .as_tuple()
            .ok_or_else(|| RuntimeError::new("matrix key"))?;
        Ok(Value::pair(Value::pair(ij[1].clone(), ij[0].clone()), v))
    })
}

/// Element-wise join combine: `op(f, x, y) = x.join(y).mapValues(f)`.
fn elementwise(
    f: impl Fn(&Value, &Value) -> Result<Value> + Send + Sync + 'static,
    x: &Dataset,
    y: &Dataset,
) -> Result<Dataset> {
    x.join(y)?.map(move |row| {
        let (k, ab) = key_value(row)?;
        let s = ab
            .as_tuple()
            .ok_or_else(|| RuntimeError::new("join pair"))?;
        Ok(Value::pair(k, f(&s[0], &s[1])?))
    })
}

fn scale(x: &Dataset, c: f64) -> Result<Dataset> {
    x.map(move |row| {
        let (k, v) = key_value(row)?;
        Ok(Value::pair(k, BinOp::Mul.apply(&v, &Value::Double(c))?))
    })
}

/// Matrix Factorization: the Appendix B plan built from `multiply`,
/// `transpose` and element-wise joins. Returns `(P, Q)` after `num_steps`.
pub fn matrix_factorization(
    r: &Dataset,
    p0: &Dataset,
    q0: &Dataset,
    num_steps: usize,
    a: f64,
    b: f64,
) -> Result<(Dataset, Dataset)> {
    let mut p = p0.clone();
    let mut q = q0.clone();
    for _ in 0..num_steps {
        let pq = matrix_multiplication(&p, &q)?;
        // `e`, and the new factors below, are each consumed several times
        // per iteration; pin them so their lazy join stages run once.
        let e = elementwise(|x, y| BinOp::Sub.apply(x, y), r, &pq)?.materialize()?;
        let p_new = elementwise(
            |x, y| BinOp::Add.apply(x, y),
            &p,
            &scale(
                &elementwise(
                    |x, y| BinOp::Sub.apply(x, y),
                    &scale(&matrix_multiplication(&e, &transpose(&q)?)?, 2.0)?,
                    &scale(&p, b)?,
                )?,
                a,
            )?,
        )?;
        let q_new = elementwise(
            |x, y| BinOp::Add.apply(x, y),
            &q,
            &scale(
                &elementwise(
                    |x, y| BinOp::Sub.apply(x, y),
                    &transpose(&scale(&matrix_multiplication(&transpose(&e)?, &p)?, 2.0)?)?,
                    &scale(&q, b)?,
                )?,
                a,
            )?,
        )?;
        p = p_new.materialize()?;
        q = q_new.materialize()?;
    }
    Ok((p, q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_dataflow::Context;

    fn ctx() -> Context {
        Context::new(4, 8)
    }

    fn doubles(ctx: &Context, vals: &[f64]) -> Dataset {
        ctx.from_vec(
            vals.iter()
                .enumerate()
                .map(|(i, &v)| Value::pair(Value::Long(i as i64), Value::Double(v)))
                .collect(),
        )
    }

    #[test]
    fn conditional_sum_filters_and_sums() {
        let ctx = ctx();
        let v = doubles(&ctx, &[5.0, 250.0, 7.5]);
        assert_eq!(conditional_sum(&v).unwrap(), Value::Double(12.5));
    }

    #[test]
    fn equal_detects_mismatch() {
        let ctx = ctx();
        let rows = vec![
            Value::pair(Value::Long(0), Value::str("a")),
            Value::pair(Value::Long(1), Value::str("b")),
        ];
        let v = ctx.from_vec(rows);
        assert_eq!(equal(&v, &Value::str("a")).unwrap(), Value::Bool(false));
    }

    #[test]
    fn word_count_counts() {
        let ctx = ctx();
        let words: Vec<Value> = ["a", "b", "a"]
            .iter()
            .enumerate()
            .map(|(i, w)| Value::pair(Value::Long(i as i64), Value::str(w)))
            .collect();
        let d = ctx.from_vec(words);
        let counts = word_count(&d).unwrap().collect_sorted();
        assert_eq!(
            counts,
            vec![
                Value::pair(Value::str("a"), Value::Long(2)),
                Value::pair(Value::str("b"), Value::Long(1)),
            ]
        );
    }

    #[test]
    fn matrix_multiplication_small() {
        let ctx = ctx();
        let mk = |es: &[(i64, i64, f64)]| {
            ctx.from_vec(
                es.iter()
                    .map(|&(i, j, v)| {
                        Value::pair(
                            Value::pair(Value::Long(i), Value::Long(j)),
                            Value::Double(v),
                        )
                    })
                    .collect(),
            )
        };
        let m = mk(&[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        let n = mk(&[(0, 0, 5.0), (0, 1, 6.0), (1, 0, 7.0), (1, 1, 8.0)]);
        let r = matrix_multiplication(&m, &n).unwrap().collect_sorted();
        let want = mk(&[(0, 0, 19.0), (0, 1, 22.0), (1, 0, 43.0), (1, 1, 50.0)]).collect_sorted();
        assert_eq!(r, want);
    }

    #[test]
    fn kmeans_converges_to_square_centers() {
        let ctx = ctx();
        let points = ctx.from_vec(diablo_workloads::generators::kmeans_points(2000, 2, 3));
        let initial: Vec<(f64, f64)> = vec![(1.2, 1.2), (1.2, 3.2), (3.2, 1.2), (3.2, 3.2)];
        let out = kmeans(&points, &initial, 3).unwrap();
        for (i, (x, y)) in out.iter().enumerate() {
            let want = ((i / 2) as f64 * 2.0 + 1.5, (i % 2) as f64 * 2.0 + 1.5);
            assert!(
                (x - want.0).abs() < 0.2 && (y - want.1).abs() < 0.2,
                "centroid {i}: ({x}, {y}) vs {want:?}"
            );
        }
    }

    #[test]
    fn pagerank_ranks_sum_reasonably() {
        let ctx = ctx();
        let e = ctx.from_vec(diablo_workloads::rmat::pagerank_graph(50, 4));
        let ranks = pagerank(&e, 50, 3).unwrap();
        let total: f64 = ranks
            .collect()
            .iter()
            .map(|r| key_value(r).unwrap().1.as_double().unwrap())
            .sum();
        assert!(total > 0.5 && total < 1.5, "total rank {total}");
    }

    #[test]
    fn matrix_factorization_reduces_error() {
        let ctx = ctx();
        let r = ctx.from_vec(diablo_workloads::generators::sparse_matrix(10, 0.3, 5));
        let p0 = ctx.from_vec(diablo_workloads::generators::factor_matrix(10, 2, 6));
        let q0 = ctx.from_vec(diablo_workloads::generators::factor_matrix(2, 10, 7));
        let err_of = |p: &Dataset, q: &Dataset| -> f64 {
            let pq = matrix_multiplication(p, q).unwrap();
            let e = elementwise(|x, y| BinOp::Sub.apply(x, y), &r, &pq).unwrap();
            e.collect()
                .iter()
                .map(|row| {
                    let v = key_value(row).unwrap().1.as_double().unwrap();
                    v * v
                })
                .sum()
        };
        let before = err_of(&p0, &q0);
        let (p, q) = matrix_factorization(&r, &p0, &q0, 5, 0.01, 0.02).unwrap();
        let after = err_of(&p, &q);
        assert!(
            after < before,
            "gradient descent reduces error: {before} → {after}"
        );
    }

    #[test]
    fn histogram_components_sum_to_n() {
        let ctx = ctx();
        let p = ctx.from_vec(diablo_workloads::generators::random_pixels(500, 8));
        let (r, g, b) = histogram(&p).unwrap();
        for d in [r, g, b] {
            let total: i64 = d
                .collect()
                .iter()
                .map(|row| key_value(row).unwrap().1.as_long().unwrap())
                .sum();
            assert_eq!(total, 500);
        }
    }

    #[test]
    fn linear_regression_recovers_line() {
        let ctx = ctx();
        // y = 2x + 1 exactly.
        let pts: Vec<Value> = (0..100)
            .map(|i| {
                let x = i as f64;
                Value::pair(
                    Value::Long(i),
                    Value::pair(Value::Double(x), Value::Double(2.0 * x + 1.0)),
                )
            })
            .collect();
        let d = ctx.from_vec(pts);
        let (intercept, slope) = linear_regression(&d, 100).unwrap();
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
    }
}
