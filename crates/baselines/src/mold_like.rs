//! A MOLD-style template-rewrite translator (Table 1 comparison).
//!
//! MOLD [37] translates imperative loops by matching AST fragments against
//! a database of rewrite templates and then *searching* for the best
//! sequence of fusion rewrites over the resulting operator plan; its
//! reported times (seconds to minutes, Table 1) are dominated by that
//! search, and its coverage is bounded by the template database. This
//! module is an honest miniature with the same two phases:
//!
//! 1. **Template matching** — each statement must match one of the loop
//!    templates (flat map/reduce, filter-reduce, group-by increments,
//!    nested range-loop updates). Programs outside the space — anything
//!    with a `while` loop, such as PageRank or Matrix Factorization —
//!    fail, as they do for MOLD in the paper.
//! 2. **Fusion search** — an exhaustive exploration of fusion-rewrite
//!    orderings over the operator plan (bounded by a state budget),
//!    returning the shortest plan found. This is real cloning/matching
//!    work whose cost grows combinatorially with program size — orders of
//!    magnitude beyond DIABLO's compositional single pass, which is
//!    exactly the Table 1 story.

use std::collections::{HashSet, VecDeque};

use diablo_lang::ast::{Expr, Lhs, Stmt};
use diablo_lang::{parse, typecheck};

/// A translated plan: DISC operation descriptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoldPlan {
    /// Human-readable DISC operations, in order.
    pub ops: Vec<String>,
    /// Number of fusion-search states explored.
    pub states_explored: usize,
}

/// Fusion-search state budget.
pub const DEFAULT_BUDGET: usize = 60_000;

/// Translates a loop program by template matching + fusion search.
pub fn mold_translate(source: &str) -> Result<MoldPlan, String> {
    mold_translate_with_budget(source, DEFAULT_BUDGET)
}

/// [`mold_translate`] with an explicit fusion-search budget.
pub fn mold_translate_with_budget(source: &str, budget: usize) -> Result<MoldPlan, String> {
    let program = parse(source).map_err(|e| format!("parse: {e}"))?;
    let tp = typecheck(program).map_err(|e| format!("type: {e}"))?;

    // Phase 1: every statement must match a template.
    let mut ops: Vec<String> = Vec::new();
    for stmt in &tp.program.body {
        let matched = TEMPLATES.iter().find_map(|t| t(stmt));
        match matched {
            Some(op) => ops.push(op),
            None => {
                return Err(format!(
                    "no template matches statement at line {}",
                    stmt.span().line
                ))
            }
        }
    }

    // Phase 2: exhaustive fusion search over rewrite orderings (BFS with a
    // visited set, bounded by the budget), keeping the shortest plan.
    let mut best = ops.clone();
    let mut explored = 0usize;
    let mut seen: HashSet<Vec<String>> = HashSet::new();
    let mut queue: VecDeque<Vec<String>> = VecDeque::new();
    seen.insert(ops.clone());
    queue.push_back(ops);
    while let Some(state) = queue.pop_front() {
        explored += 1;
        if explored > budget {
            break; // best-so-far, like a heuristic search under a deadline
        }
        if state.len() < best.len() {
            best = state.clone();
        }
        for i in 0..state.len().saturating_sub(1) {
            if let Some(fused) = fuse(&state[i], &state[i + 1]) {
                let mut next = Vec::with_capacity(state.len() - 1);
                next.extend_from_slice(&state[..i]);
                next.push(fused);
                next.extend_from_slice(&state[i + 2..]);
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        // MOLD also explores *reorderings* of independent operations; model
        // that as swap moves, which blows the ordering space up exactly the
        // way its heuristic search must cope with.
        for i in 0..state.len().saturating_sub(1) {
            if independent(&state[i], &state[i + 1]) {
                let mut next = state.clone();
                next.swap(i, i + 1);
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    Ok(MoldPlan {
        ops: best,
        states_explored: explored,
    })
}

/// Two plan operators fuse when they scan the same source shape.
fn fuse(a: &str, b: &str) -> Option<String> {
    let scans = |s: &str| s.starts_with("map") || s.starts_with("filter");
    if scans(a) && scans(b) {
        Some(format!("fused[{a}; {b}]"))
    } else {
        None
    }
}

/// Driver-side bindings commute with everything; scans commute with each
/// other (they read different sources in these plans).
fn independent(a: &str, b: &str) -> bool {
    a.starts_with("bind") || b.starts_with("bind") || (a != b)
}

type Template = fn(&Stmt) -> Option<String>;

/// The template database, in MOLD's spirit: each template matches one loop
/// shape and names the DISC operation it would emit.
const TEMPLATES: &[Template] = &[
    t_decl,
    t_scalar_assign,
    t_filter_reduce,
    t_map_reduce,
    t_group_by_increment,
    t_multi_group_block,
    t_range_copy,
    t_nested_range_update,
];

/// `var v: t = e` — a driver-side binding.
fn t_decl(s: &Stmt) -> Option<String> {
    match s {
        Stmt::Decl { name, .. } => Some(format!("bind({name})")),
        _ => None,
    }
}

/// A top-level scalar assignment (outside loops).
fn t_scalar_assign(s: &Stmt) -> Option<String> {
    match s {
        Stmt::Assign {
            dest: Lhs::Var(v), ..
        } => Some(format!("bind(driver:{v})")),
        _ => None,
    }
}

/// `for v in V do acc ⊕= e` — map + reduce.
fn t_map_reduce(s: &Stmt) -> Option<String> {
    let Stmt::ForIn { var, body, .. } = s else {
        return None;
    };
    match body.as_ref() {
        Stmt::Incr {
            dest: Lhs::Var(acc),
            op,
            value,
            ..
        } if mentions(value, var) || matches!(value, Expr::Const(_)) => {
            Some(format!("map.reduce[{}]({acc})", op.symbol()))
        }
        Stmt::Block(stmts) => {
            let parts: Option<Vec<String>> = stmts
                .iter()
                .map(|st| match st {
                    Stmt::Incr {
                        dest: Lhs::Var(acc),
                        op,
                        ..
                    } => Some(format!("map.reduce[{}]({acc})", op.symbol())),
                    _ => None,
                })
                .collect();
            parts
                .map(|v| v.join(" ++ "))
                .map(|v| format!("map.multi[{v}]"))
        }
        _ => None,
    }
}

/// `for v in V do if (p) acc ⊕= e` — filter + map + reduce.
fn t_filter_reduce(s: &Stmt) -> Option<String> {
    let Stmt::ForIn { var, body, .. } = s else {
        return None;
    };
    let Stmt::If {
        cond,
        then_branch,
        else_branch: None,
        ..
    } = body.as_ref()
    else {
        return None;
    };
    let Stmt::Incr {
        dest: Lhs::Var(acc),
        op,
        ..
    } = then_branch.as_ref()
    else {
        return None;
    };
    mentions(cond, var).then(|| format!("filter.map.reduce[{}]({acc})", op.symbol()))
}

/// `for v in V do C[k(v)] ⊕= e(v)` — map + reduceByKey (the group-by
/// pattern MOLD's paper highlights).
fn t_group_by_increment(s: &Stmt) -> Option<String> {
    let Stmt::ForIn { var, body, .. } = s else {
        return None;
    };
    group_increment(body, var)
}

/// A block of group-by increments in one loop (the Histogram shape).
fn t_multi_group_block(s: &Stmt) -> Option<String> {
    let Stmt::ForIn { var, body, .. } = s else {
        return None;
    };
    let Stmt::Block(stmts) = body.as_ref() else {
        return None;
    };
    let ops: Option<Vec<String>> = stmts.iter().map(|st| group_increment(st, var)).collect();
    ops.map(|v| format!("map.multi[{}]", v.join(" ++ ")))
}

fn group_increment(s: &Stmt, var: &str) -> Option<String> {
    let Stmt::Incr {
        dest: Lhs::Index(arr, idxs),
        op,
        ..
    } = s
    else {
        return None;
    };
    idxs.iter()
        .any(|e| mentions(e, var))
        .then(|| format!("map.reduceByKey[{}]({arr})", op.symbol()))
}

/// `for i = lo, hi do V[i] := W[i]` — bounded copy.
fn t_range_copy(s: &Stmt) -> Option<String> {
    let Stmt::For { var, body, .. } = s else {
        return None;
    };
    let Stmt::Assign {
        dest: Lhs::Index(arr, idxs),
        ..
    } = body.as_ref()
    else {
        return None;
    };
    idxs.iter()
        .all(|e| matches!(e, Expr::Dest(Lhs::Var(v)) if v == var))
        .then(|| format!("mapValues({arr})"))
}

/// Nested range loops ending in indexed updates — the matrix shapes
/// (initialization, addition, multiplication, the K-Means body).
fn t_nested_range_update(s: &Stmt) -> Option<String> {
    fn walk(s: &Stmt, depth: usize) -> Option<String> {
        if depth > 5 {
            return None;
        }
        match s {
            Stmt::For { body, .. } => walk(body, depth + 1),
            Stmt::If {
                then_branch,
                else_branch: None,
                ..
            } => walk(then_branch, depth + 1),
            Stmt::Block(ss) => {
                let parts: Option<Vec<String>> = ss.iter().map(|st| walk(st, depth + 1)).collect();
                parts.map(|v| v.join(" ++ "))
            }
            Stmt::Incr {
                dest: Lhs::Index(arr, _),
                op,
                ..
            } => Some(format!("map.join.reduceByKey[{}]({arr})", op.symbol())),
            Stmt::Incr {
                dest: Lhs::Proj(_, _) | Lhs::Var(_),
                op,
                ..
            } => Some(format!("map.reduce[{}](tmp)", op.symbol())),
            Stmt::Assign {
                dest: Lhs::Index(arr, _),
                ..
            } => Some(format!("map.join({arr})")),
            _ => None,
        }
    }
    match s {
        Stmt::For { body, .. } => walk(body, 1),
        _ => None,
    }
}

/// True if the expression reads the loop element (directly or as an index).
fn mentions(e: &Expr, var: &str) -> bool {
    let mut vars = Vec::new();
    e.free_vars(&mut vars);
    vars.iter().any(|v| v == var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use diablo_workloads::programs;

    #[test]
    fn translates_flat_aggregations() {
        let plan = mold_translate(programs::SUM).expect("sum");
        assert!(plan.ops.iter().any(|o| o.contains("reduce")), "{plan:?}");
        let plan = mold_translate(programs::CONDITIONAL_SUM).expect("conditional sum");
        assert!(plan.ops.iter().any(|o| o.contains("filter")), "{plan:?}");
    }

    #[test]
    fn translates_group_by_shapes() {
        let plan = mold_translate(programs::WORD_COUNT).expect("word count");
        assert!(
            plan.ops.iter().any(|o| o.contains("reduceByKey")),
            "{plan:?}"
        );
        let plan = mold_translate(programs::HISTOGRAM).expect("histogram");
        assert!(plan.ops.iter().any(|o| o.contains("multi")), "{plan:?}");
    }

    #[test]
    fn translates_matrix_multiplication() {
        let plan = mold_translate(programs::MATRIX_MULTIPLICATION).expect("mm");
        assert!(plan.ops.iter().any(|o| o.contains("join")), "{plan:?}");
    }

    #[test]
    fn fails_on_while_programs() {
        assert!(mold_translate(programs::PAGERANK).is_err());
        assert!(mold_translate(programs::MATRIX_FACTORIZATION).is_err());
    }

    #[test]
    fn fusion_search_does_real_work() {
        let plan = mold_translate(programs::LINEAR_REGRESSION).expect("linreg");
        assert!(
            plan.states_explored > 1_000,
            "expected a combinatorial search, got {}",
            plan.states_explored
        );
    }

    #[test]
    fn small_budget_still_returns_a_plan() {
        let plan = mold_translate_with_budget(programs::LINEAR_REGRESSION, 10).expect("plan");
        assert!(!plan.ops.is_empty());
    }
}
