//! A Casper-style enumerative synthesizer (Table 1 comparison).
//!
//! Casper [2] translates sequential Java loops to Map-Reduce by
//! *synthesizing* program summaries: it enumerates candidate map/reduce
//! programs over a grammar of expressions and asks a verifier whether the
//! candidate is equivalent to the original loop. Its Table 1 times are
//! minutes-to-hours, and it fails ("fail" entries / aborted runs) on
//! anything beyond trivially flat loops.
//!
//! This module is an honest miniature: it enumerates candidate
//! `(map-expression, reduce-operator)` sketches — and `(key, value,
//! reduce)` sketches for collection outputs — over a small expression
//! grammar, and *validates* each candidate against the sequential
//! reference interpreter on sample inputs (playing the role of Casper's
//! Dafny verifier, which the paper itself could not always run). The cost
//! is real enumeration + evaluation work; complex programs exhaust the
//! candidate budget and fail, exactly the Casper column's shape.

use std::collections::HashMap;

use diablo_comp::ir::{CExpr, Comprehension, Pattern, Qual};
use diablo_comp::{eval, Env};
use diablo_interp::Interpreter;
use diablo_lang::{parse, typecheck};
use diablo_runtime::{AggOp, BinOp, UnOp, Value};
use diablo_workloads::Workload;

/// A synthesized map/reduce summary.
#[derive(Debug, Clone)]
pub struct CasperProgram {
    /// For scalar outputs: the map expression over the element `v`.
    pub map_expr: CExpr,
    /// For collection outputs: the key expression (None for scalars).
    pub key_expr: Option<CExpr>,
    /// The reduction monoid.
    pub reduce_op: BinOp,
    /// Number of candidates enumerated before success.
    pub candidates_tried: usize,
}

/// Candidate budget before giving up.
pub const DEFAULT_BUDGET: usize = 400_000;

/// Synthesizes a map/reduce summary equivalent to the workload's program,
/// validating candidates against the reference interpreter on a subsample
/// of the workload's own inputs.
pub fn casper_translate(w: &Workload) -> Result<CasperProgram, String> {
    casper_translate_with_budget(w, DEFAULT_BUDGET)
}

/// [`casper_translate`] with an explicit candidate budget.
pub fn casper_translate_with_budget(w: &Workload, budget: usize) -> Result<CasperProgram, String> {
    // Casper only handles single flat loops over one collection.
    let tp = typecheck(parse(w.source).map_err(|e| format!("parse: {e}"))?)
        .map_err(|e| format!("type: {e}"))?;
    let loop_count = tp
        .program
        .body
        .iter()
        .filter(|s| {
            matches!(
                s,
                diablo_lang::ast::Stmt::For { .. }
                    | diablo_lang::ast::Stmt::ForIn { .. }
                    | diablo_lang::ast::Stmt::While { .. }
            )
        })
        .count();
    if loop_count != 1 {
        return Err(format!(
            "program has {loop_count} loops; the synthesizer only handles single flat loops"
        ));
    }
    if w.collections.len() != 1 {
        return Err("the synthesizer needs exactly one input collection".to_string());
    }

    // Build validation samples: three subsamples of the real input.
    let (coll_name, rows) = &w.collections[0];
    let samples: Vec<Vec<Value>> = [7usize, 13, 29]
        .iter()
        .map(|&stride| {
            rows.iter()
                .step_by(stride)
                .take(24)
                .cloned()
                .collect::<Vec<Value>>()
        })
        .collect();

    // Reference results per sample, from the sequential interpreter.
    let out_var = w.outputs[0];
    let mut expected: Vec<Expected> = Vec::new();
    for sample in &samples {
        let mut interp = Interpreter::new();
        for (name, v) in &w.scalars {
            interp.bind_scalar(name, v.clone());
        }
        interp
            .bind_collection(coll_name, sample.clone())
            .map_err(|e| e.to_string())?;
        interp.run(&tp).map_err(|e| format!("reference run: {e}"))?;
        if let Some(v) = interp.scalar(out_var) {
            expected.push(Expected::Scalar(v));
        } else if let Some(c) = interp.collection(out_var) {
            expected.push(Expected::Collection(c));
        } else {
            return Err(format!("output `{out_var}` missing from reference run"));
        }
    }
    let want_collection = matches!(expected[0], Expected::Collection(_));

    // The candidate grammar, over the loop element `v` and scalar inputs.
    let scalars: Vec<(String, Value)> = w
        .scalars
        .iter()
        .map(|(n, v)| (n.to_string(), v.clone()))
        .collect();
    let exprs = grammar(&scalars);
    let reduce_ops = [
        BinOp::Add,
        BinOp::Mul,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
    ];

    let mut tried = 0usize;
    if want_collection {
        // (key, value, ⊕) sketches.
        for key in &exprs {
            for val in &exprs {
                for op in reduce_ops {
                    tried += 1;
                    if tried > budget {
                        return Err(format!("candidate budget exhausted after {tried}"));
                    }
                    if validate_collection(key, val, op, &samples, &expected, &scalars) {
                        return Ok(CasperProgram {
                            map_expr: val.clone(),
                            key_expr: Some(key.clone()),
                            reduce_op: op,
                            candidates_tried: tried,
                        });
                    }
                }
            }
        }
    } else {
        // (map, ⊕) sketches.
        for map in &exprs {
            for op in reduce_ops {
                tried += 1;
                if tried > budget {
                    return Err(format!("candidate budget exhausted after {tried}"));
                }
                if validate_scalar(map, op, &samples, &expected, &scalars) {
                    return Ok(CasperProgram {
                        map_expr: map.clone(),
                        key_expr: None,
                        reduce_op: op,
                        candidates_tried: tried,
                    });
                }
            }
        }
    }
    Err(format!("no candidate matched after {tried} tries"))
}

enum Expected {
    Scalar(Value),
    Collection(Vec<Value>),
}

/// The expression grammar over the element `v`: depth-2 combinations of
/// terminals with comparison/arithmetic/boolean operators.
fn grammar(scalars: &[(String, Value)]) -> Vec<CExpr> {
    let mut terminals: Vec<CExpr> = vec![
        CExpr::var("v"),
        CExpr::Proj(Box::new(CExpr::var("v")), "_1".into()),
        CExpr::Proj(Box::new(CExpr::var("v")), "_2".into()),
        CExpr::Const(Value::Long(0)),
        CExpr::Const(Value::Long(1)),
        CExpr::Const(Value::Double(100.0)),
        CExpr::Const(Value::str("key1")),
        CExpr::Const(Value::str("key2")),
        CExpr::Const(Value::str("key3")),
    ];
    for (n, _) in scalars {
        terminals.push(CExpr::var(n.clone()));
    }
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Lt,
        BinOp::Eq,
        BinOp::And,
        BinOp::Or,
    ];
    let mut depth2: Vec<CExpr> = Vec::new();
    for a in &terminals {
        for b in &terminals {
            for op in ops {
                depth2.push(CExpr::Bin(op, Box::new(a.clone()), Box::new(b.clone())));
            }
        }
    }
    // A sprinkle of depth-3 shapes: conditional-style products and
    // negations, enough to express filter-aggregations.
    let mut depth3: Vec<CExpr> = Vec::new();
    for d2 in depth2.iter().take(600) {
        for t in terminals.iter().take(4) {
            depth3.push(CExpr::Bin(
                BinOp::Mul,
                Box::new(d2.clone()),
                Box::new(t.clone()),
            ));
        }
        depth3.push(CExpr::Un(UnOp::Not, Box::new(d2.clone())));
    }
    let mut all = terminals;
    all.extend(depth2);
    all.extend(depth3);
    all
}

/// Folds `map(v)` over the sample with `⊕` and compares to the expected
/// scalar. Boolean-guarded sums (`if p { s += e }`) are expressible as
/// `(p) * e`-style candidates only for numerics, so mismatching types are
/// simply rejected by evaluation errors.
fn validate_scalar(
    map: &CExpr,
    op: BinOp,
    samples: &[Vec<Value>],
    expected: &[Expected],
    scalars: &[(String, Value)],
) -> bool {
    let Some(agg) = AggOp::new(op) else {
        return false;
    };
    for (sample, want) in samples.iter().zip(expected) {
        let Expected::Scalar(want) = want else {
            return false;
        };
        let mut acc: Option<Value> = None;
        for row in sample {
            let Ok((_, v)) = diablo_runtime::array::key_value(row) else {
                return false;
            };
            let mut env: Env = HashMap::new();
            env.insert("v".into(), v);
            for (n, val) in scalars {
                env.insert(n.clone(), val.clone());
            }
            let Ok(mapped) = eval(map, &env) else {
                return false;
            };
            acc = Some(match acc {
                None => mapped,
                Some(a) => match op.apply(&a, &mapped) {
                    Ok(v) => v,
                    Err(_) => return false,
                },
            });
        }
        let got = match acc {
            Some(v) => v,
            None => match agg.identity() {
                Some(v) => v,
                None => return false,
            },
        };
        if !values_close(&got, want) {
            return false;
        }
    }
    true
}

/// Group-by validation for collection outputs.
fn validate_collection(
    key: &CExpr,
    val: &CExpr,
    op: BinOp,
    samples: &[Vec<Value>],
    expected: &[Expected],
    scalars: &[(String, Value)],
) -> bool {
    if AggOp::new(op).is_none() {
        return false;
    }
    // Build { (k, ⊕/v) | v ← sample, group by k } with the comprehension
    // evaluator — the same machinery Casper's summaries denote.
    let comp = Comprehension::new(
        CExpr::pair(
            CExpr::var("k"),
            CExpr::Agg(
                AggOp::new(op).expect("commutative"),
                Box::new(CExpr::var("mv")),
            ),
        ),
        vec![
            Qual::Gen(
                Pattern::pair(Pattern::Wild, Pattern::var("v")),
                CExpr::var("input"),
            ),
            Qual::Let(Pattern::var("mv"), val.clone()),
            Qual::GroupBy(Pattern::var("k"), key.clone()),
        ],
    );
    for (sample, want) in samples.iter().zip(expected) {
        let Expected::Collection(want) = want else {
            return false;
        };
        let mut env: Env = HashMap::new();
        env.insert("input".into(), Value::bag(sample.clone()));
        for (n, v) in scalars {
            env.insert(n.clone(), v.clone());
        }
        let Ok(got) = diablo_comp::eval_comp(&comp, &env) else {
            return false;
        };
        let mut got = got;
        got.sort();
        if got.len() != want.len() || !got.iter().zip(want).all(|(a, b)| values_close(a, b)) {
            return false;
        }
    }
    true
}

fn values_close(a: &Value, b: &Value) -> bool {
    match (a.as_double(), b.as_double()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesizes_sum() {
        let w = diablo_workloads::sum(500, 3);
        let p = casper_translate(&w).expect("sum is synthesizable");
        assert_eq!(p.reduce_op, BinOp::Add);
        assert_eq!(p.map_expr, CExpr::var("v"));
    }

    #[test]
    fn synthesizes_count() {
        let w = diablo_workloads::count(500, 4);
        let p = casper_translate(&w).expect("count is synthesizable");
        assert_eq!(p.reduce_op, BinOp::Add);
    }

    #[test]
    fn synthesizes_equal_via_boolean_reduction() {
        let w = diablo_workloads::equal(300, 5);
        let p = casper_translate(&w).expect("equal is synthesizable");
        // Conjunction has several numeric encodings the enumerator may find
        // first: `&&`, `min`, or the product of 0/1-coerced booleans.
        assert!(
            matches!(p.reduce_op, BinOp::And | BinOp::Min | BinOp::Mul),
            "{:?}",
            p.reduce_op
        );
    }

    #[test]
    fn synthesizes_word_count_as_group_by() {
        let w = diablo_workloads::word_count(400, 6);
        let p = casper_translate(&w).expect("word count is synthesizable");
        assert!(p.key_expr.is_some());
        assert_eq!(p.reduce_op, BinOp::Add);
    }

    #[test]
    fn rejects_multi_loop_programs() {
        let w = diablo_workloads::linear_regression(300, 7);
        let err = casper_translate(&w).unwrap_err();
        assert!(err.contains("loops"), "{err}");
    }

    #[test]
    fn rejects_iterative_programs() {
        let w = diablo_workloads::pagerank(30, 1, 8);
        assert!(casper_translate(&w).is_err());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let w = diablo_workloads::conditional_sum(300, 9);
        // Conditional sum needs `(v < 100) * v`-style depth-3 candidates;
        // a tiny budget cannot reach them.
        let err = casper_translate_with_budget(&w, 50).unwrap_err();
        assert!(err.contains("budget"), "{err}");
    }
}
