//! # diablo-baselines
//!
//! The comparison systems of the paper's evaluation (§6), rebuilt on this
//! repository's substrate:
//!
//! * [`handwritten`] — the "hand-written Spark" programs of Appendix B,
//!   written directly against the dataflow engine by an "expert" (us).
//!   These are the solid lines of Figure 3.
//! * [`mold_like`] — a template-rewrite translator in the style of MOLD
//!   [Radoi et al., OOPSLA 2014]: a database of loop templates applied by
//!   backtracking search over rewrite sequences. Reproduces the *shape* of
//!   MOLD's Table 1 column (orders of magnitude slower than DIABLO's
//!   compositional rules; fails on complex programs).
//! * [`casper_like`] — an enumerative program synthesizer in the style of
//!   Casper [Ahmad & Cheung, SIGMOD 2018]: enumerate map/reduce program
//!   sketches over an expression grammar and validate candidates against
//!   the sequential reference interpreter. Reproduces the shape of
//!   Casper's Table 1 column (much slower still; gives up on anything
//!   beyond flat loops).
//!
//! Neither MOLD nor Casper could be run by the paper's authors themselves
//! (§6: MOLD had unresolvable dependencies; Casper failed to compile its
//! own tests), so these are *honest miniatures* that do real search work —
//! no artificial sleeps — calibrated to show the same relative behavior.

pub mod casper_like;
pub mod handwritten;
pub mod mold_like;

pub use casper_like::casper_translate;
pub use mold_like::mold_translate;
