//! Minimal, deterministic stand-in for the `proptest` crate (see
//! `vendor/README.md`). Supports the `proptest!` macro, range / tuple /
//! collection / option strategies, `prop_map`, and the `prop_assert*`
//! macros. Case generation is seeded from the test name, so runs are
//! reproducible; there is no shrinking — a failure reports the case number
//! and message instead.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// A failed test case (returned by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    /// What the assertion reported.
    pub message: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic source of randomness for strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            state: h.finish() | 1,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()` — the standard distribution of a type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Collection and option strategies (`prop::collection::vec`, ...).
pub mod strategies {
    use super::*;

    /// Strategies over collections.
    pub mod collection {
        use super::*;

        /// A `Vec` of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.end.saturating_sub(self.size.start).max(1);
                let n = self.size.start + rng.below(span);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `HashMap` with up to `size` entries (distinct keys).
        pub fn hash_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> HashMapStrategy<K, V> {
            HashMapStrategy { key, value, size }
        }

        /// The strategy returned by [`hash_map`].
        pub struct HashMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        impl<K, V> Strategy for HashMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Eq + Hash,
            V: Strategy,
        {
            type Value = HashMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> HashMap<K::Value, V::Value> {
                let span = self.size.end.saturating_sub(self.size.start).max(1);
                let n = self.size.start + rng.below(span);
                let mut out = HashMap::with_capacity(n);
                // Key collisions shrink the map, matching proptest's
                // "up to size" semantics.
                for _ in 0..n {
                    out.insert(self.key.generate(rng), self.value.generate(rng));
                }
                out
            }
        }
    }

    /// Strategies over options.
    pub mod option {
        use super::*;

        /// `None` a quarter of the time, `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// The strategy returned by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// The `proptest::prelude` the tests import wholesale.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError {
                message: format!($($fmt)*),
            });
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// The `proptest!` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher for the test items inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0i64..10, y in -5i64..5) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_range(xs in prop::collection::vec(0i64..3, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6, "len {}", xs.len());
        }

        #[test]
        fn maps_have_unique_keys(m in prop::collection::hash_map(0i64..10, 0i64..5, 0..8)) {
            prop_assert!(m.len() <= 8);
        }

        #[test]
        fn prop_map_applies(v in (0i64..5, 0i64..5).prop_map(|(a, b)| a + b)) {
            prop_assert!((0..10).contains(&v));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strat = crate::strategies::option::of(0i64..100);
        let mut rng = crate::TestRng::deterministic("options");
        let samples: Vec<_> = (0..100).map(|_| strat.generate(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().any(Option::is_none));
    }
}
