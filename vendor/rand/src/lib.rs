//! Minimal, deterministic stand-in for the `rand` crate (see
//! `vendor/README.md`). Implements `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen` and `Rng::gen_range` over the types the workspace samples.
//!
//! The generator is splitmix64: full 64-bit period, passes the statistical
//! smoke tests the workload generators rely on (uniformity, independence of
//! seeds), and is reproducible across platforms.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-sampling interface.
pub trait Rng {
    /// Returns the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, uniform for integers and bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    /// Maps 64 uniform random bits to a sample.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

impl Standard for i64 {
    fn sample(bits: u64) -> i64 {
        bits as i64
    }
}

/// Integer types uniform ranges can produce.
pub trait UniformInt: Copy {
    /// Converts to u128 for modular reduction (offset from range start).
    fn to_u128(self) -> u128;
    /// Converts back from the reduced offset.
    fn from_u128(v: u128) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a member of the range from 64 uniform bits.
    fn sample(self, bits: u64) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, bits: u64) -> T {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(hi > lo, "gen_range called with an empty range");
        let span = hi - lo;
        T::from_u128(lo + (bits as u128) % span)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, bits: u64) -> T {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(hi >= lo, "gen_range called with an empty range");
        let span = hi - lo + 1;
        T::from_u128(lo + (bits as u128) % span)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(1..=5i64);
            assert!((1..=5).contains(&v));
        }
    }
}
