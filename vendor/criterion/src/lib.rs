//! Minimal stand-in for the `criterion` crate (see `vendor/README.md`).
//! Supports `Criterion`, benchmark groups with `sample_size` /
//! `measurement_time`, `bench_function`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a warm-up iteration then
//! `sample_size` timed samples and prints mean / best wall-clock — enough
//! to compare plans, without criterion's statistical machinery.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
            measurement_time: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench("", id, 10, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Benchmarks one function.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(
            &self.name,
            &id.to_string(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` runs the measured body.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Option<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `body` once per sample.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        // Warm-up (uncounted).
        black_box(body());
        let run_start = Instant::now();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(body());
            self.samples.push(start.elapsed());
            if let Some(budget) = self.budget {
                if run_start.elapsed() > budget {
                    break;
                }
            }
        }
    }
}

fn run_bench(
    group: &str,
    id: &str,
    sample_size: usize,
    budget: Option<Duration>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget,
        target_samples: sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let best = b.samples.iter().min().expect("nonempty");
    println!(
        "  {label}: mean {:>12.6?}  best {:>12.6?}  ({} samples)",
        mean,
        best,
        b.samples.len()
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
